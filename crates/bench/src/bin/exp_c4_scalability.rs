//! Experiment C4 (paper §1/§2.2 claim): scalability — "our scheme can
//! potentially scale well in terms of both the number of groups and the
//! number of group nodes in each group in large-scale MANETs".
//!
//! Sweeps control overhead (bytes per node per second) against network
//! size up to 2000 nodes, against group count, and against group size for
//! HVDB vs SPBM vs DSM, locating the crossovers.

use hvdb_bench::{run_seeds, Proto, Workload};
use hvdb_sim::SimDuration;

const SEEDS: [u64; 2] = [5, 6];
const PROTOS: [Proto; 3] = [Proto::Hvdb, Proto::Spbm, Proto::Dsm];

fn base() -> Workload {
    Workload {
        packets_per_group: 2,
        warmup: SimDuration::from_secs(90),
        traffic_window: SimDuration::from_secs(20),
        cooldown: SimDuration::from_secs(20),
        ..Default::default()
    }
}

fn main() {
    println!("# C4a: control overhead vs network size (constant density, 2 groups)");
    println!(
        "{:<8} {:<10} {:>14} {:>16} {:>10}",
        "nodes", "protocol", "ctrl-bytes", "bytes/node/s", "delivery"
    );
    for nodes in [250usize, 500, 1000] {
        let w = Workload {
            nodes,
            side: (nodes as f64 * 8533.0).sqrt(),
            vc_side: if nodes >= 1000 { 12 } else { 8 },
            ..base()
        };
        for proto in PROTOS {
            // DSM's N^2 location flood makes 1000-node runs prohibitively
            // slow to *simulate* (the overhead it would generate is the
            // point); extrapolate from the smaller sizes instead.
            if proto == Proto::Dsm && nodes >= 1000 {
                println!("{:<8} {:<10} {:>14} {:>16} {:>10}", nodes, proto.name(), "(quadratic)", "-", "-");
                continue;
            }
            let m = run_seeds(proto, &w, &SEEDS);
            println!(
                "{:<8} {:<10} {:>14} {:>16.1} {:>10.3}",
                nodes,
                proto.name(),
                m.control_bytes,
                m.control_bytes as f64 / nodes as f64 / 130.0,
                m.delivery
            );
        }
    }

    println!("\n# C4b: control overhead vs group count (400 nodes)");
    println!(
        "{:<8} {:<10} {:>14} {:>10}",
        "groups", "protocol", "ctrl-bytes", "delivery"
    );
    for groups in [2usize, 8, 24] {
        let w = Workload {
            nodes: 400,
            groups,
            ..base()
        };
        for proto in PROTOS {
            let m = run_seeds(proto, &w, &SEEDS);
            println!(
                "{:<8} {:<10} {:>14} {:>10.3}",
                groups,
                proto.name(),
                m.control_bytes,
                m.delivery
            );
        }
    }

    println!("\n# C4c: control overhead vs members per group (400 nodes, 2 groups)");
    println!(
        "{:<8} {:<10} {:>14} {:>10}",
        "members", "protocol", "ctrl-bytes", "delivery"
    );
    for members in [10usize, 50, 150] {
        let w = Workload {
            nodes: 400,
            members_per_group: members,
            ..base()
        };
        for proto in PROTOS {
            let m = run_seeds(proto, &w, &SEEDS);
            println!(
                "{:<8} {:<10} {:>14} {:>10.3}",
                members,
                proto.name(),
                m.control_bytes,
                m.delivery
            );
        }
    }
}
