//! Experiment F2 (paper Fig. 2): the worked example — "An Example MANET
//! with 8*8 VCs, which is further divided into four 4-dimensional logical
//! hypercubes".
//!
//! Reconstructs the figure exactly (full occupancy) and under partial
//! occupancy, printing the ASCII rendering with border/inner CH
//! classification and auditing the four hypercubes.

use hvdb_cluster::Candidate;
use hvdb_core::{build_model, HvdbConfig};
use hvdb_geo::{Aabb, Hid, Vec2};
use hvdb_hypercube::routing::diameter;
use hvdb_sim::SimRng;

fn main() {
    let area = Aabb::from_size(800.0, 800.0);
    let cfg = HvdbConfig::fig2(area);
    println!("# F2a: the exact Fig. 2 structure (one CH per VC)");
    let full: Vec<Candidate> = cfg
        .grid
        .iter_ids()
        .enumerate()
        .map(|(i, vc)| Candidate {
            node: i as u32,
            pos: cfg.grid.vcc(vc),
            vel: Vec2::ZERO,
            eligible: true,
        })
        .collect();
    let model = build_model(&cfg, &full);
    println!("{}", model.render_ascii(&cfg));
    let s = model.stats(&cfg.map, full.len());
    println!(
        "CHs {} (border {} / inner {}), hypercubes {}, occupancy {:.2}",
        s.cluster_heads, s.border_chs, s.inner_chs, s.hypercubes, s.mean_occupancy
    );
    for hid in &model.mesh_present {
        let cube = model.cube(*hid).unwrap();
        println!(
            "  {hid}: {} nodes, complete = {}, connected = {}, diameter = {:?}",
            cube.node_count(),
            cube.is_complete(),
            cube.is_connected(),
            diameter(cube)
        );
    }

    println!("\n# F2b: the same area at 60% VC occupancy (incomplete hypercubes)");
    let mut rng = SimRng::new(7);
    let sparse: Vec<Candidate> = full
        .iter()
        .filter(|_| rng.chance(0.6))
        .cloned()
        .collect();
    let model = build_model(&cfg, &sparse);
    println!("{}", model.render_ascii(&cfg));
    for hid in &model.mesh_present {
        let cube = model.cube(*hid).unwrap();
        println!(
            "  {hid}: {} nodes, connected = {}, diameter = {:?}",
            cube.node_count(),
            cube.is_connected(),
            diameter(cube)
        );
    }
    // The mesh tier view.
    let (mr, mc) = cfg.map.mesh_dims();
    println!("\nmesh tier: {mr}x{mc}, occupied {:?}", model.mesh_present);
    assert!(model.mesh_present.contains(&Hid::new(0, 0)));
}
