//! Experiment C3 (paper §5 claim): load balancing — "no single node is more
//! loaded than any other nodes, and no problem of bottlenecks exists, which
//! is likely to occur in tree-based architectures".
//!
//! Compares the distribution of per-node transmitted bytes (Jain fairness,
//! peak-to-mean, Gini) between HVDB and the shared-tree baseline (plus
//! flooding as the perfectly-uniform reference) under heavy multicast
//! traffic, and tabulates the hottest nodes.

use hvdb_baselines::SharedTreeProtocol;
use hvdb_bench::{metrics_of, Workload};
use hvdb_core::HvdbProtocol;
use hvdb_sim::{gini, jain_fairness, max_mean_ratio, Simulator};

fn main() {
    let w = Workload {
        packets_per_group: 40, // heavy traffic to expose hot spots
        groups: 2,
        members_per_group: 15,
        seed: 71,
        ..Default::default()
    };
    let scenario = w.build();

    println!("# C3: per-node transmitted-bytes distribution under heavy multicast");
    println!(
        "{:<12} {:>8} {:>10} {:>8} {:>14} {:>14}",
        "protocol", "jain", "max/mean", "gini", "hottest-bytes", "median-bytes"
    );

    let stats_row = |name: &str, tx: &[u64]| {
        let mut sorted: Vec<u64> = tx.to_vec();
        sorted.sort_unstable();
        let hottest = *sorted.last().unwrap_or(&0);
        let median = sorted[sorted.len() / 2];
        println!(
            "{:<12} {:>8.3} {:>10.2} {:>8.3} {:>14} {:>14}",
            name,
            jain_fairness(tx),
            max_mean_ratio(tx),
            gini(tx),
            hottest,
            median
        );
    };

    // HVDB.
    let mut sim = Simulator::new(scenario.sim.clone(), scenario.hvdb_mobility());
    let mut hvdb = HvdbProtocol::new(
        scenario.hvdb.clone(),
        &scenario.members,
        scenario.traffic.clone(),
        vec![],
    );
    sim.run(&mut hvdb, scenario.until);
    let hvdb_delivery = metrics_of(sim.stats()).delivery;
    stats_row("hvdb", &sim.stats().node_tx_bytes);
    // Data-plane-only view for HVDB's CHs (the backbone the claim is about).
    let heads = hvdb.cluster_heads();
    let head_tx: Vec<u64> = heads
        .iter()
        .map(|h| sim.stats().node_tx_bytes[h.idx()])
        .collect();
    stats_row("hvdb-CHs", &head_tx);

    // Shared tree.
    let mut sim = Simulator::new(scenario.sim.clone(), scenario.hvdb_mobility());
    let mut tree = SharedTreeProtocol::new(
        &scenario.members,
        scenario.traffic.clone(),
        vec![],
    );
    sim.run(&mut tree, scenario.until);
    let tree_delivery = metrics_of(sim.stats()).delivery;
    stats_row("shared-tree", &sim.stats().node_tx_bytes);
    let core = tree.core().expect("core elected");
    let core_bytes = sim.stats().node_tx_bytes[core.idx()];
    let mean =
        sim.stats().node_tx_bytes.iter().sum::<u64>() as f64 / scenario.sim.num_nodes as f64;
    println!(
        "{:<12} core node carries {core_bytes} bytes = {:.1}x the network mean",
        "", core_bytes as f64 / mean
    );

    println!(
        "\ndelivery for context: hvdb {:.3}, shared-tree {:.3}",
        hvdb_delivery, tree_delivery
    );
    println!("\n(The claim holds if hvdb's CH-plane max/mean and Gini are well below");
    println!(" the shared tree's, whose core is the designed-in bottleneck.)");
}
