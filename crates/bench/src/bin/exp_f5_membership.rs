//! Experiment F5 (paper Fig. 5): summary-based membership update overhead.
//!
//! Measures *membership-maintenance* control traffic (no data sent) for
//! HVDB vs the membership-bearing baselines (SPBM-style, DSM-style) while
//! sweeping network size, group count, and members per group. The paper's
//! claim: HVDB's summaries touch only CHs (and aggregate per hypercube),
//! while SPBM involves every node and DSM floods per node.

use hvdb_bench::{run_seeds, Proto, Workload};
use hvdb_sim::SimDuration;

fn membership_workload() -> Workload {
    Workload {
        packets_per_group: 0, // membership machinery only
        warmup: SimDuration::from_secs(100),
        traffic_window: SimDuration::from_secs(1),
        cooldown: SimDuration::from_secs(1),
        ..Default::default()
    }
}

const PROTOS: [Proto; 3] = [Proto::Hvdb, Proto::Spbm, Proto::Dsm];
const SEEDS: [u64; 3] = [1, 2, 3];

fn main() {
    println!("# F5a: membership overhead vs network size (2 groups x 10 members, 100 s)");
    println!(
        "{:<8} {:<12} {:>12} {:>14} {:>16}",
        "nodes", "protocol", "ctrl-msgs", "ctrl-bytes", "bytes/node/s"
    );
    for nodes in [100usize, 200, 400] {
        let w = Workload {
            nodes,
            side: (nodes as f64 * 8000.0).sqrt(), // constant density
            ..membership_workload()
        };
        for proto in PROTOS {
            let m = run_seeds(proto, &w, &SEEDS);
            println!(
                "{:<8} {:<12} {:>12} {:>14} {:>16.1}",
                nodes,
                proto.name(),
                m.control_msgs,
                m.control_bytes,
                m.control_bytes as f64 / nodes as f64 / 100.0
            );
        }
    }

    println!("\n# F5b: membership overhead vs number of groups (300 nodes, 10 members each)");
    println!(
        "{:<8} {:<12} {:>12} {:>14}",
        "groups", "protocol", "ctrl-msgs", "ctrl-bytes"
    );
    for groups in [1usize, 4, 8, 16] {
        let w = Workload {
            groups,
            ..membership_workload()
        };
        for proto in PROTOS {
            let m = run_seeds(proto, &w, &SEEDS);
            println!(
                "{:<8} {:<12} {:>12} {:>14}",
                groups,
                proto.name(),
                m.control_msgs,
                m.control_bytes
            );
        }
    }

    println!("\n# F5c: membership overhead vs members per group (300 nodes, 2 groups)");
    println!(
        "{:<8} {:<12} {:>12} {:>14}",
        "members", "protocol", "ctrl-msgs", "ctrl-bytes"
    );
    for members in [5usize, 20, 60, 120] {
        let w = Workload {
            members_per_group: members,
            ..membership_workload()
        };
        for proto in PROTOS {
            let m = run_seeds(proto, &w, &SEEDS);
            println!(
                "{:<8} {:<12} {:>12} {:>14}",
                members,
                proto.name(),
                m.control_msgs,
                m.control_bytes
            );
        }
    }
    println!("\n(HVDB's curve should stay near-flat in members per group — MT state");
    println!(" scales with groups x hypercubes, not members; SPBM/DSM grow.)");
}
