//! Experiment A1: ablations over the design choices DESIGN.md calls out —
//! the horizon k, the hypercube dimension, tree caching (§4.3), and the
//! two designated-broadcaster criteria (§4.2).

use hvdb_bench::{metrics_of, Workload};
use hvdb_core::{DesignationCriterion, HvdbProtocol};
use hvdb_sim::Simulator;

fn run_with(
    w: &Workload,
    tweak: impl Fn(&mut hvdb_core::HvdbConfig),
) -> (hvdb_bench::RunMetrics, hvdb_core::Counters) {
    let mut scenario = w.build();
    tweak(&mut scenario.hvdb);
    let mut sim = Simulator::new(scenario.sim.clone(), scenario.hvdb_mobility());
    let mut proto = HvdbProtocol::new(
        scenario.hvdb.clone(),
        &scenario.members,
        scenario.traffic.clone(),
        vec![],
    );
    sim.run(&mut proto, scenario.until);
    (metrics_of(sim.stats()), proto.counters)
}

fn main() {
    let w = Workload {
        seed: 4,
        ..Default::default()
    };

    println!("# A1a: horizon k (route-table reach vs beacon size)");
    println!(
        "{:<4} {:>10} {:>11} {:>14} {:>10}",
        "k", "delivery", "lat-ms", "ctrl-bytes", "no-route"
    );
    for k in [1u32, 2, 4, 6] {
        let (m, c) = run_with(&w, |cfg| cfg.k = k);
        println!(
            "{:<4} {:>10.3} {:>11.1} {:>14} {:>10}",
            k,
            m.delivery,
            m.latency * 1e3,
            m.control_bytes,
            c.no_route
        );
    }

    println!("\n# A1b: hypercube dimension (paper suggests 3..6)");
    println!(
        "{:<4} {:>10} {:>11} {:>14}",
        "dim", "delivery", "lat-ms", "ctrl-bytes"
    );
    for dim in [3u8, 4, 5, 6] {
        let w = Workload {
            dim,
            vc_side: 8,
            seed: 4,
            ..Default::default()
        };
        let (m, _) = run_with(&w, |_| {});
        println!(
            "{:<4} {:>10.3} {:>11.1} {:>14}",
            dim,
            m.delivery,
            m.latency * 1e3,
            m.control_bytes
        );
    }

    println!("\n# A1c: multicast-tree caching (4.3)");
    println!(
        "{:<8} {:>10} {:>13} {:>13}",
        "cache", "delivery", "trees-built", "cache-hits"
    );
    let heavy = Workload {
        packets_per_group: 30,
        seed: 4,
        ..Default::default()
    };
    for cache in [true, false] {
        let (m, c) = run_with(&heavy, |cfg| cfg.cache_trees = cache);
        println!(
            "{:<8} {:>10.3} {:>13} {:>13}",
            cache, m.delivery, c.trees_built, c.tree_cache_hits
        );
    }

    println!("\n# A1d: designated-broadcaster criterion (4.2)");
    println!(
        "{:<22} {:>10} {:>14} {:>14}",
        "criterion", "delivery", "ht-broadcasts", "ht-bytes"
    );
    for (name, crit) in [
        ("most-groups", DesignationCriterion::MostGroups),
        ("neighborhood-groups", DesignationCriterion::NeighborhoodGroups),
    ] {
        let ht_bytes;
        let (m, c) = {
            let mut scenario = w.build();
            scenario.hvdb.designation = crit;
            let mut sim = Simulator::new(scenario.sim.clone(), scenario.hvdb_mobility());
            let mut proto = HvdbProtocol::new(
                scenario.hvdb.clone(),
                &scenario.members,
                scenario.traffic.clone(),
                vec![],
            );
            sim.run(&mut proto, scenario.until);
            ht_bytes = sim.stats().bytes("ht-bcast");
            (metrics_of(sim.stats()), proto.counters)
        };
        println!(
            "{:<22} {:>10.3} {:>14} {:>14}",
            name, m.delivery, c.ht_broadcasts, ht_bytes
        );
    }
}
