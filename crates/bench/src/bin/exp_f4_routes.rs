//! Experiment F4 (paper Fig. 4): proactive local logical route maintenance.
//!
//! Runs the distributed protocol and measures (a) how completely CH route
//! tables fill for each horizon k, (b) the beacon overhead k costs, and
//! (c) how quickly tables recover when CHs fail — the maintenance loop the
//! algorithm box promises.

use hvdb_core::{HvdbConfig, HvdbMsg, HvdbProtocol};
use hvdb_geo::{Aabb, Point, Vec2};
use hvdb_sim::{
    NodeId, RadioConfig, SimConfig, SimDuration, SimTime, Simulator, Stationary,
};

/// One node pinned near every VC centre of an 8x8 grid.
fn build_sim(seed: u64) -> (Simulator<HvdbMsg>, HvdbConfig) {
    let area = Aabb::from_size(1600.0, 1600.0);
    let cfg = HvdbConfig::new(area, 8, 8, 4);
    let sim_cfg = SimConfig {
        area,
        num_nodes: 64,
        radio: RadioConfig {
            range: 500.0,
            ..Default::default()
        },
        mobility_tick: SimDuration::ZERO,
        enhanced_fraction: 1.0,
        seed,
    };
    let mut sim: Simulator<HvdbMsg> = Simulator::new(sim_cfg, Box::new(Stationary));
    let ids: Vec<_> = cfg.grid.iter_ids().collect();
    for (i, vc) in ids.iter().enumerate() {
        let c = cfg.grid.vcc(*vc);
        sim.world_mut().set_motion(
            NodeId(i as u32),
            Point::new(c.x + (i % 5) as f64, c.y),
            Vec2::ZERO,
        );
    }
    sim.world_mut().rebuild_index();
    (sim, cfg)
}

fn main() {
    println!("# F4a: route-table completeness and beacon cost vs horizon k");
    println!(
        "{:<4} {:>12} {:>14} {:>14} {:>12}",
        "k", "avg-dests", "beacon-msgs", "beacon-bytes", "per-CH/s"
    );
    for k in 1u32..=6 {
        let (mut sim, mut cfg) = build_sim(10 + k as u64);
        cfg.k = k;
        let mut proto = HvdbProtocol::new(cfg, &[], vec![], vec![]);
        sim.run(&mut proto, SimTime::from_secs(60));
        let heads = proto.cluster_heads();
        let dests: usize = heads
            .iter()
            .filter_map(|h| proto.route_table(*h))
            .map(|t| t.destination_count())
            .sum();
        let avg = dests as f64 / heads.len().max(1) as f64;
        let msgs = sim.stats().msgs("beacon");
        let bytes = sim.stats().bytes("beacon");
        println!(
            "{:<4} {:>12.2} {:>14} {:>14} {:>12.2}",
            k,
            avg,
            msgs,
            bytes,
            msgs as f64 / heads.len().max(1) as f64 / 60.0
        );
    }

    println!("\n# F4b: recovery after CH failures (k = 4)");
    println!(
        "{:<10} {:>12} {:>12} {:>12}",
        "failed", "expired", "failovers", "avg-dests"
    );
    for failures in [0usize, 4, 8, 16] {
        let (mut sim, cfg) = build_sim(99);
        let mut proto = HvdbProtocol::new(cfg, &[], vec![], vec![]);
        // Let the backbone converge, then fail CHs, then let it recover.
        for f in 0..failures {
            sim.schedule_fail(NodeId((f * 4) as u32), SimTime::from_secs(60));
        }
        sim.run(&mut proto, SimTime::from_secs(120));
        let heads = proto.cluster_heads();
        let dests: usize = heads
            .iter()
            .filter_map(|h| proto.route_table(*h))
            .map(|t| t.destination_count())
            .sum();
        println!(
            "{:<10} {:>12} {:>12} {:>12.2}",
            failures,
            proto.counters.neighbors_expired,
            proto.counters.route_failovers,
            dests as f64 / heads.len().max(1) as f64
        );
    }
}
