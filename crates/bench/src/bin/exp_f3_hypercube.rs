//! Experiment F3 (paper Fig. 3): the 4-dimensional logical hypercube with
//! its additional grid-adjacency logical links.
//!
//! Prints the exact label layout of the figure, node 1000's 1-logical-hop
//! route set and the paper's 2-logical-hop route examples, then tabulates
//! hypercube structural properties (diameter, disjoint paths) across the
//! dimensions the paper considers (3, 4, 5, 6).

use hvdb_core::{build_region_cube, HvdbConfig};
use hvdb_geo::{Aabb, Hid, Hnid};
use hvdb_hypercube::routing::{diameter, local_routes};
use hvdb_hypercube::{label, pair_connectivity, IncompleteHypercube};

fn main() {
    let cfg = HvdbConfig::fig2(Aabb::from_size(800.0, 800.0));

    println!("# F3a: Fig. 3 label layout (bit-interleaved rows/cols)");
    for r in 0..cfg.map.region_rows() {
        let row: Vec<String> = (0..cfg.map.region_cols())
            .map(|c| cfg.map.interleave(r, c).to_bits(4))
            .collect();
        println!("  {}", row.join(" "));
    }

    // Build the fully occupied region cube with its grid links.
    let all_labels = (0..16u32).map(Hnid);
    let cube = build_region_cube(&cfg, Hid::new(0, 0), all_labels);

    println!("\n# F3b: local logical routes of node 1000 (paper's worked example)");
    let table = local_routes(&cube, 0b1000, 2);
    let one_hop: Vec<String> = table
        .iter()
        .filter(|r| r.hops == 1)
        .map(|r| label::to_bits(r.dst, 4))
        .collect();
    println!("  1-logical-hop routes: {}", one_hop.join(", "));
    assert_eq!(one_hop, ["0000", "0010", "1001", "1010", "1100"]);
    let two_hop: Vec<String> = table
        .iter()
        .filter(|r| r.hops == 2)
        .map(|r| {
            let via: Vec<String> = r.route.iter().map(|l| label::to_bits(*l, 4)).collect();
            via.join(" -> ")
        })
        .collect();
    println!("  2-logical-hop routes:");
    for t in &two_hop {
        println!("    {t}");
    }
    // The paper's published chains are all valid 1-logical-hop sequences
    // (BFS may report a different equal-length route to the same node).
    for chain in [
        [0b1000u32, 0b1001, 0b1100],
        [0b1000, 0b1100, 0b1101],
        [0b1000, 0b0010, 0b0011],
        [0b1000, 0b0010, 0b0110],
    ] {
        for hop in chain.windows(2) {
            assert!(
                cube.has_link(hop[0], hop[1]),
                "paper hop {} -> {} is not a logical link",
                label::to_bits(hop[0], 4),
                label::to_bits(hop[1], 4)
            );
        }
        // Each chain is a 2-logical-hop route; the shortest route to its
        // endpoint is at most that (1000 -> 1100 is also a direct link).
        let dst = chain[2];
        let entry = table.iter().find(|r| r.dst == dst).expect("in table");
        assert!(entry.hops <= 2, "paper chain endpoint beyond 2 logical hops");
    }
    println!("  (all four chains from 4.1 verified as valid 2-hop routes)");

    println!("\n# F3c: structural properties vs dimension (complete cubes, paper 2.1)");
    println!(
        "{:<6} {:>7} {:>10} {:>16} {:>16}",
        "dim", "nodes", "diameter", "disjoint(0,max)", "disjoint(adj)"
    );
    for dim in 3u8..=6 {
        let cube = IncompleteHypercube::complete(dim);
        let far = (1u32 << dim) - 1;
        println!(
            "{:<6} {:>7} {:>10} {:>16} {:>16}",
            dim,
            cube.node_count(),
            diameter(&cube).unwrap(),
            pair_connectivity(&cube, 0, far),
            pair_connectivity(&cube, 0, 1),
        );
    }

    println!("\n# F3d: grid links shrink logical distances (dim 4, full region)");
    let plain = IncompleteHypercube::complete(4);
    let with_grid = cube;
    println!(
        "  diameter: pure hypercube {} -> with Fig. 3 grid links {}",
        diameter(&plain).unwrap(),
        diameter(&with_grid).unwrap()
    );
    println!(
        "  connectivity(0000,1111): pure {} -> with grid links {}",
        pair_connectivity(&plain, 0b0000, 0b1111),
        pair_connectivity(&with_grid, 0b0000, 0b1111)
    );
}
