//! Experiment F1 (paper Fig. 1): HVDB three-tier model construction.
//!
//! Builds the backbone from random snapshots and reports the tier
//! statistics across node counts and CH-capable fractions, plus cluster
//! stability across mobility steps — the structural properties the model
//! diagram promises.

use hvdb_cluster::{diff, form_clusters, Candidate};
use hvdb_core::{build_model, HvdbConfig};
use hvdb_geo::Aabb;
use hvdb_sim::SimRng;

fn snapshot(cfg: &HvdbConfig, n: usize, enhanced: f64, rng: &mut SimRng) -> Vec<Candidate> {
    (0..n)
        .map(|i| Candidate {
            node: i as u32,
            pos: rng.point_in(&cfg.grid.area()),
            vel: rng.velocity(0.5, 3.0),
            eligible: rng.chance(enhanced),
        })
        .collect()
}

fn main() {
    let area = Aabb::from_size(1600.0, 1600.0);
    let cfg = HvdbConfig::new(area, 8, 8, 4);
    println!("# F1a: backbone statistics vs node count (enhanced = 0.8, 8x8 VCs, dim 4)");
    println!(
        "{:<8} {:>6} {:>6} {:>6} {:>7} {:>10} {:>10}",
        "nodes", "CHs", "BCHs", "ICHs", "cubes", "occupancy", "connected"
    );
    for n in [50usize, 100, 200, 400, 800, 1600] {
        let mut rng = SimRng::new(42);
        let snap = snapshot(&cfg, n, 0.8, &mut rng);
        let model = build_model(&cfg, &snap);
        let s = model.stats(&cfg.map, n);
        println!(
            "{:<8} {:>6} {:>6} {:>6} {:>7} {:>10.3} {:>10.3}",
            n, s.cluster_heads, s.border_chs, s.inner_chs, s.hypercubes, s.mean_occupancy,
            s.connected_fraction
        );
    }

    println!("\n# F1b: backbone statistics vs CH-capable fraction (400 nodes)");
    println!(
        "{:<10} {:>6} {:>7} {:>10} {:>10}",
        "enhanced", "CHs", "cubes", "occupancy", "connected"
    );
    for e in [0.1, 0.25, 0.5, 0.75, 1.0] {
        let mut rng = SimRng::new(43);
        let snap = snapshot(&cfg, 400, e, &mut rng);
        let model = build_model(&cfg, &snap);
        let s = model.stats(&cfg.map, 400);
        println!(
            "{:<10} {:>6} {:>7} {:>10.3} {:>10.3}",
            e, s.cluster_heads, s.hypercubes, s.mean_occupancy, s.connected_fraction
        );
    }

    println!("\n# F1c: cluster stability across 10 s mobility steps (400 nodes, speeds m/s)");
    println!("{:<12} {:>11} {:>10}", "speed", "retention", "handovers");
    for (lo, hi) in [(0.1, 0.5), (0.5, 2.0), (2.0, 8.0), (8.0, 20.0)] {
        let mut rng = SimRng::new(44);
        let mut snap = snapshot(&cfg, 400, 0.8, &mut rng);
        for c in snap.iter_mut() {
            c.vel = rng.velocity(lo, hi);
        }
        let before = form_clusters(&cfg.election, &cfg.grid, &snap);
        // Advance 10 s along each node's velocity.
        for c in snap.iter_mut() {
            c.pos = cfg.grid.area().clamp(c.pos.advanced(c.vel, 10.0));
        }
        let after = form_clusters(&cfg.election, &cfg.grid, &snap);
        let (events, report) = diff(&before, &after);
        println!(
            "{:<12} {:>11.3} {:>10}",
            format!("{lo}-{hi}"),
            report.retention(),
            events.len()
        );
    }
}
