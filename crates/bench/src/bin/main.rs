//! The `hvdb-bench` CLI: one entry point for every experiment.
//!
//! ```text
//! hvdb-bench list
//! hvdb-bench run <scenario>... [--smoke] [--seeds 1,2,3] [--out-dir DIR]
//! hvdb-bench run --all [--smoke] [--out-dir DIR]
//! ```
//!
//! Each run prints a human-readable table and writes
//! `BENCH_<scenario>.json` (uniform rows: sweep axis, point label,
//! protocol, named metrics) into the output directory (default: the
//! current directory), building the perf trajectory PR over PR.

use hvdb_bench::scenario::{find, registry, run_scenario, RunOpts, ScenarioDef};
use hvdb_bench::ScenarioReport;
use std::io::Write as _;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => {
            list();
            ExitCode::SUCCESS
        }
        Some("run") => run(&args[1..]),
        Some("--help") | Some("-h") | None => {
            usage();
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown command: {other}\n");
            usage();
            ExitCode::FAILURE
        }
    }
}

fn usage() {
    eprintln!("hvdb-bench — experiment harness for the HVDB reproduction");
    eprintln!();
    eprintln!("USAGE:");
    eprintln!("  hvdb-bench list");
    eprintln!("  hvdb-bench run <scenario>... [--smoke] [--seeds 1,2,3] [--out-dir DIR]");
    eprintln!("  hvdb-bench run --all        [--smoke] [--seeds 1,2,3] [--out-dir DIR]");
    eprintln!();
    eprintln!("Writes BENCH_<scenario>.json per scenario; see `list` for names.");
}

fn list() {
    println!("{:<16} {:<16} summary", "scenario", "figure");
    for def in registry() {
        println!("{:<16} {:<16} {}", def.name, def.figure, def.summary);
    }
}

fn run(args: &[String]) -> ExitCode {
    let mut names: Vec<String> = Vec::new();
    let mut all = false;
    let mut opts = RunOpts::default();
    let mut out_dir = String::from(".");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--all" => all = true,
            "--smoke" => opts.smoke = true,
            "--seeds" => {
                i += 1;
                let Some(list) = args.get(i) else {
                    eprintln!("--seeds needs a comma-separated list");
                    return ExitCode::FAILURE;
                };
                match list
                    .split(',')
                    .map(str::parse::<u64>)
                    .collect::<Result<Vec<_>, _>>()
                {
                    Ok(seeds) if !seeds.is_empty() => opts.seeds = Some(seeds),
                    _ => {
                        eprintln!("--seeds needs a comma-separated list of integers");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--out-dir" => {
                i += 1;
                let Some(dir) = args.get(i) else {
                    eprintln!("--out-dir needs a path");
                    return ExitCode::FAILURE;
                };
                out_dir = dir.clone();
            }
            name => names.push(name.to_string()),
        }
        i += 1;
    }
    let defs: Vec<ScenarioDef> = if all {
        registry()
    } else if names.is_empty() {
        eprintln!("no scenario named; use `run --all` or `list`");
        return ExitCode::FAILURE;
    } else {
        let mut defs = Vec::new();
        for name in &names {
            match find(name) {
                Some(def) => defs.push(def),
                None => {
                    eprintln!("unknown scenario: {name} (see `hvdb-bench list`)");
                    return ExitCode::FAILURE;
                }
            }
        }
        defs
    };
    for def in &defs {
        let started = std::time::Instant::now();
        let report = run_scenario(def, &opts);
        print_report(&report);
        let path = format!("{out_dir}/BENCH_{}.json", def.name);
        match std::fs::File::create(&path).and_then(|mut f| writeln!(f, "{}", report.to_json())) {
            Ok(()) => println!(
                "wrote {path} ({} rows, {:.1}s)\n",
                report.rows.len(),
                started.elapsed().as_secs_f64()
            ),
            Err(e) => {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn print_report(report: &ScenarioReport) {
    println!(
        "# {} ({}): {}{}",
        report.scenario,
        report.figure,
        report.summary,
        if report.smoke { " [smoke]" } else { "" }
    );
    let mut current_sweep = String::new();
    for row in &report.rows {
        if row.sweep != current_sweep {
            current_sweep = row.sweep.clone();
            println!("## {current_sweep}");
        }
        let metrics: Vec<String> = row
            .metrics
            .iter()
            .map(|(k, v)| {
                if v.fract() == 0.0 && v.abs() < 9e15 {
                    format!("{k}={v:.0}")
                } else {
                    format!("{k}={v:.3}")
                }
            })
            .collect();
        println!(
            "  {:<22} {:<12} {}",
            row.label,
            row.proto,
            metrics.join(" ")
        );
    }
}
