//! The `hvdb-bench` CLI: one entry point for every experiment.
//!
//! ```text
//! hvdb-bench list [--json]
//! hvdb-bench run <scenario>... [--smoke] [--seeds 1,2,3] [--out-dir DIR]
//! hvdb-bench run --all [--smoke] [--out-dir DIR]
//! hvdb-bench run ... [--trace-out PATH] [--trace-filter CATS]
//! hvdb-bench validate <file>... [--loss-floor F]
//! hvdb-bench explain <report.json>
//! ```
//!
//! Each run prints a human-readable table and writes
//! `BENCH_<scenario>.json` (uniform rows: sweep axis, point label,
//! protocol, named metrics) into the output directory (default: the
//! current directory), building the perf trajectory PR over PR. Every
//! written report is immediately re-validated against the strict schema;
//! `run` exits nonzero if any scenario's report fails (after finishing
//! the remaining scenarios). `validate` checks committed/artifact
//! reports and applies the `loss` scenario's delivery-floor regression
//! gate. `--trace-out` additionally records a structured-trace +
//! profiler run of the paper geometry on the parallel engine and writes
//! it as a Chrome trace-event (Perfetto-loadable) document. `explain`
//! prints a human post-mortem of one report: gates at default floors,
//! fault counters, timeline inflections and the profiler's phase split.

use hvdb_bench::scenario::{find, registry, run_scenario, RunOpts, ScenarioDef};
use hvdb_bench::{
    check_byzantine_gate, check_loss_floor, check_loss_high_band, check_overhead_gate,
    check_partition_gate, check_partition_timeline, check_perf_gate, check_perf_threads_gate,
    check_scale_gate, check_traffic_gate, check_trajectory, gated_metrics, run_par_hvdb_traced,
    validate_report_str, Json, ScenarioReport, Workload, LOSS_DELIVERY_FLOOR, PERF_SPEEDUP_FLOOR,
    PERF_THREADS_SPEEDUP_FLOOR, TRAFFIC_P99_REFERENCE_POINT, TRAJECTORY_DELIVERY_TOLERANCE,
    TRAJECTORY_OVERHEAD_TOLERANCE,
};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => list(&args[1..]),
        Some("run") => run(&args[1..]),
        Some("validate") => validate(&args[1..]),
        Some("explain") => explain(&args[1..]),
        Some("--help") | Some("-h") | None => {
            usage();
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown command: {other}\n");
            usage();
            ExitCode::FAILURE
        }
    }
}

fn usage() {
    eprintln!("hvdb-bench — experiment harness for the HVDB reproduction");
    eprintln!();
    eprintln!("USAGE:");
    eprintln!("  hvdb-bench list [--json]");
    eprintln!(
        "  hvdb-bench run <scenario>... [--smoke] [--seeds 1,2,3] [--threads N] [--out-dir DIR]"
    );
    eprintln!(
        "  hvdb-bench run --all        [--smoke] [--seeds 1,2,3] [--threads N] [--out-dir DIR]"
    );
    eprintln!("  hvdb-bench run ...          [--trace-out PATH] [--trace-filter CATS]");
    eprintln!("  hvdb-bench validate <file>... [--loss-floor F] [--perf-floor F]");
    eprintln!("                                [--threads-floor F] [--baseline-dir DIR]");
    eprintln!("                                [--delivery-tolerance F] [--overhead-tolerance F]");
    eprintln!("  hvdb-bench explain <report.json>");
    eprintln!();
    eprintln!("`list --json` emits the machine-readable registry (name, figure,");
    eprintln!("summary, gated metrics) for tooling and the CI job matrix.");
    eprintln!("`run --trace-out PATH` additionally runs the paper geometry on the");
    eprintln!("parallel engine with the structured trace and profiler enabled and");
    eprintln!("writes a Chrome trace-event document (open in Perfetto / about:tracing);");
    eprintln!("--trace-filter narrows categories (comma-separated");
    eprintln!("election,soft-state,fault,flow; default all).");
    eprintln!("`explain` prints a human post-mortem of one report: gates at default");
    eprintln!("floors, fault counters, timeline inflections, profiler phase split.");
    eprintln!();
    eprintln!("Writes BENCH_<scenario>.json per scenario; see `list` for names.");
    eprintln!("`validate` schema-checks report files. Scenario-specific gates:");
    eprintln!("\"loss\" must clear the worst-seed delivery floor (default");
    eprintln!("{LOSS_DELIVERY_FLOOR}) at 15% frame loss; \"overhead\" must show the quiet-phase");
    eprintln!("adaptive-refresh improvement and stay under the frames/s ceiling;");
    eprintln!("\"perf\" must show shared-frame delivery at least --perf-floor times");
    eprintln!("(default {PERF_SPEEDUP_FLOOR}) faster than the per-receiver-clone arm, and its");
    eprintln!("engine-threads arm must keep events_processed identical across thread");
    eprintln!("counts and — on machines with >= 4 hardware threads — clear the");
    eprintln!("--threads-floor speedup (default {PERF_THREADS_SPEEDUP_FLOOR}).");
    eprintln!("`run --threads N` sets the worker-thread count of parallel-engine");
    eprintln!("arms (default 1); it is recorded in every report and cannot change");
    eprintln!("deterministic metrics. \"scale\" must keep events_processed identical");
    eprintln!("across its engine-threads arm, and full (non-smoke) runs must hold");
    eprintln!("delivery at the largest network size (the 100k campaign gate).");
    eprintln!("\"partition\" must keep worst-seed reachable delivery above the");
    eprintln!("floor during the split and re-merge the head hierarchy within the");
    eprintln!("budget after the heal; \"byzantine\" must bound the worst per-node");
    eprintln!("delivery damage across its k sweep (full runs only for both).");
    eprintln!("With --baseline-dir, every report is additionally compared against");
    eprintln!("the committed BENCH_<scenario>.json in DIR: delivery may regress at");
    eprintln!("most --delivery-tolerance (default {TRAJECTORY_DELIVERY_TOLERANCE}) and overhead metrics may grow");
    eprintln!("at most --overhead-tolerance (default {TRAJECTORY_OVERHEAD_TOLERANCE}).");
}

fn validate(args: &[String]) -> ExitCode {
    let mut files: Vec<String> = Vec::new();
    let mut floor = LOSS_DELIVERY_FLOOR;
    let mut perf_floor = PERF_SPEEDUP_FLOOR;
    let mut threads_floor = PERF_THREADS_SPEEDUP_FLOOR;
    let mut baseline_dir: Option<String> = None;
    let mut delivery_tol = TRAJECTORY_DELIVERY_TOLERANCE;
    let mut overhead_tol = TRAJECTORY_OVERHEAD_TOLERANCE;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--loss-floor" => {
                i += 1;
                match args.get(i).and_then(|f| f.parse::<f64>().ok()) {
                    Some(f) if (0.0..=1.0).contains(&f) => floor = f,
                    _ => {
                        eprintln!("--loss-floor needs a number in [0, 1]");
                        return ExitCode::FAILURE;
                    }
                }
            }
            flag @ ("--perf-floor" | "--threads-floor") => {
                i += 1;
                match args.get(i).and_then(|f| f.parse::<f64>().ok()) {
                    Some(f) if f > 0.0 && f.is_finite() => {
                        if flag == "--perf-floor" {
                            perf_floor = f;
                        } else {
                            threads_floor = f;
                        }
                    }
                    _ => {
                        eprintln!("{flag} needs a positive number");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--baseline-dir" => {
                i += 1;
                match args.get(i) {
                    Some(dir) => baseline_dir = Some(dir.clone()),
                    None => {
                        eprintln!("--baseline-dir needs a path");
                        return ExitCode::FAILURE;
                    }
                }
            }
            flag @ ("--delivery-tolerance" | "--overhead-tolerance") => {
                i += 1;
                match args.get(i).and_then(|f| f.parse::<f64>().ok()) {
                    Some(f) if (0.0..=1.0).contains(&f) => {
                        if flag == "--delivery-tolerance" {
                            delivery_tol = f;
                        } else {
                            overhead_tol = f;
                        }
                    }
                    _ => {
                        eprintln!("{flag} needs a number in [0, 1]");
                        return ExitCode::FAILURE;
                    }
                }
            }
            file => files.push(file.to_string()),
        }
        i += 1;
    }
    if files.is_empty() {
        eprintln!("validate needs at least one report file");
        return ExitCode::FAILURE;
    }
    let mut failures = 0u32;
    for file in &files {
        let doc = match std::fs::read_to_string(file)
            .map_err(|e| format!("cannot read: {e}"))
            .and_then(|text| validate_report_str(&text))
        {
            Ok(doc) => doc,
            Err(e) => {
                eprintln!("{file}: FAIL: {e}");
                failures += 1;
                continue;
            }
        };
        let mut notes: Vec<String> = Vec::new();
        let mut fails: Vec<String> = Vec::new();
        let floors = GateFloors {
            loss: floor,
            perf: perf_floor,
            threads: threads_floor,
        };
        scenario_gates(&doc, &floors, &mut notes, &mut fails);
        if let Some(dir) = &baseline_dir {
            let trajectory = (|| {
                let scenario =
                    scenario_name(&doc).ok_or_else(|| "report has no scenario name".to_string())?;
                let base_path = format!("{dir}/BENCH_{scenario}.json");
                // A gate that cannot find its baseline must fail, not
                // silently wave the candidate through.
                let base_text = std::fs::read_to_string(&base_path)
                    .map_err(|e| format!("cannot read baseline {base_path}: {e}"))?;
                let baseline = validate_report_str(&base_text)
                    .map_err(|e| format!("baseline {base_path} invalid: {e}"))?;
                let rows = check_trajectory(&doc, &baseline, delivery_tol, overhead_tol)?;
                Ok(vec![format!(
                    "trajectory ok vs {base_path} ({} checks)",
                    rows.len()
                )])
            })();
            run_gate(trajectory, &mut notes, &mut fails);
        }
        if !fails.is_empty() {
            eprintln!("{file}: FAIL ({} gate(s)):", fails.len());
            for f in &fails {
                eprintln!("  - {f}");
            }
            failures += 1;
        } else if notes.is_empty() {
            println!("{file}: ok");
        } else {
            println!("{file}: ok ({})", notes.join("; "));
        }
    }
    if failures > 0 {
        eprintln!("{failures} of {} report(s) failed validation", files.len());
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn scenario_name(doc: &hvdb_bench::Json) -> Option<String> {
    let hvdb_bench::Json::Obj(fields) = doc else {
        return None;
    };
    fields.iter().find_map(|(k, v)| match (k.as_str(), v) {
        ("scenario", hvdb_bench::Json::Str(s)) => Some(s.clone()),
        _ => None,
    })
}

/// Floors the scenario gates run at (`validate` parses overrides;
/// `explain` uses the committed defaults).
struct GateFloors {
    loss: f64,
    perf: f64,
    threads: f64,
}

impl Default for GateFloors {
    fn default() -> Self {
        GateFloors {
            loss: LOSS_DELIVERY_FLOOR,
            perf: PERF_SPEEDUP_FLOOR,
            threads: PERF_THREADS_SPEEDUP_FLOOR,
        }
    }
}

/// Runs one gate, folding its passed-check notes or its failure message
/// into the per-file tallies: every applicable gate runs, so a failing
/// report lists *all* broken gates (with expected vs actual) instead of
/// stopping at the first.
fn run_gate(res: Result<Vec<String>, String>, notes: &mut Vec<String>, fails: &mut Vec<String>) {
    match res {
        Ok(mut n) => notes.append(&mut n),
        Err(e) => fails.push(e),
    }
}

/// Every CI gate applicable to `doc`'s scenario, at the given floors —
/// the one list `validate` enforces and `explain` narrates.
fn scenario_gates(
    doc: &Json,
    floors: &GateFloors,
    notes: &mut Vec<String>,
    fails: &mut Vec<String>,
) {
    let (floor, perf_floor, threads_floor) = (floors.loss, floors.perf, floors.threads);
    match scenario_name(doc).as_deref() {
        Some("loss") => {
            run_gate(
                check_loss_floor(doc, floor)
                    .map(|worst| vec![format!("worst-seed delivery {worst:.3} >= {floor}")]),
                notes,
                fails,
            );
            run_gate(
                check_loss_high_band(doc).map(|band| {
                    band.into_iter()
                        .map(|(point, w)| format!("{point} worst {w:.3}"))
                        .collect()
                }),
                notes,
                fails,
            );
        }
        Some("overhead") => {
            run_gate(
                check_overhead_gate(doc).map(|(ratio, total)| {
                    vec![format!(
                        "quiet-phase refresh improvement {ratio:.2}x, {total:.0} control frames/s"
                    )]
                }),
                notes,
                fails,
            );
        }
        Some("perf") => {
            run_gate(
                check_perf_gate(doc, perf_floor).map(|(label, speedup)| {
                    vec![format!(
                        "shared-frame delivery {speedup:.2}x faster at {label} (floor {perf_floor})"
                    )]
                }),
                notes,
                fails,
            );
            run_gate(
                check_perf_threads_gate(doc, threads_floor).map(|(tlabel, tspeedup, enforced)| {
                    vec![if enforced {
                        format!(
                            "parallel engine {tspeedup:.2}x at {tlabel} (floor {threads_floor}), identical event counts"
                        )
                    } else {
                        format!(
                            "parallel engine {tspeedup:.2}x at {tlabel} (speedup floor waived: < 4 hardware threads), identical event counts"
                        )
                    }]
                }),
                notes,
                fails,
            );
        }
        Some("traffic") => {
            run_gate(
                check_traffic_gate(doc).map(|(knee, p99)| {
                    vec![format!(
                        "hvdb sustains {knee:.0} pps past both baselines' knees, \
                         p99 {p99:.1} ms at {TRAFFIC_P99_REFERENCE_POINT}"
                    )]
                }),
                notes,
                fails,
            );
        }
        Some("scale") => run_gate(check_scale_gate(doc), notes, fails),
        Some("partition") => run_gate(check_partition_gate(doc), notes, fails),
        Some("byzantine") => run_gate(check_byzantine_gate(doc), notes, fails),
        _ => {}
    }
}

fn list(args: &[String]) -> ExitCode {
    match args.first().map(String::as_str) {
        Some("--json") => {
            let doc = Json::Arr(
                registry()
                    .iter()
                    .map(|def| {
                        Json::Obj(vec![
                            ("name".into(), Json::Str(def.name.into())),
                            ("figure".into(), Json::Str(def.figure.into())),
                            ("summary".into(), Json::Str(def.summary.into())),
                            (
                                "gated_metrics".into(),
                                Json::Arr(
                                    gated_metrics(def.name)
                                        .iter()
                                        .map(|m| Json::Str((*m).into()))
                                        .collect(),
                                ),
                            ),
                        ])
                    })
                    .collect(),
            );
            println!("{doc}");
            ExitCode::SUCCESS
        }
        None => {
            println!("{:<16} {:<16} summary", "scenario", "figure");
            for def in registry() {
                println!("{:<16} {:<16} {}", def.name, def.figure, def.summary);
            }
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown list flag: {other} (only --json)");
            ExitCode::FAILURE
        }
    }
}

/// `hvdb-bench explain <report.json>`: a human post-mortem of one
/// report. Narrates what `validate` would enforce (at default floors)
/// plus everything the observability plane recorded: fault counters,
/// timeline inflection points, and the profiler's phase split. Exits
/// nonzero only if the file is unreadable or fails the schema — gate
/// failures are findings to narrate, not errors.
fn explain(args: &[String]) -> ExitCode {
    let [file] = args else {
        eprintln!("explain needs exactly one report file");
        return ExitCode::FAILURE;
    };
    let doc = match std::fs::read_to_string(file)
        .map_err(|e| format!("cannot read: {e}"))
        .and_then(|text| validate_report_str(&text))
    {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("{file}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let Json::Obj(fields) = &doc else {
        unreachable!("validated report is an object");
    };
    let get = |key: &str| fields.iter().find(|(k, _)| k == key).map(|(_, v)| v);
    let scenario = scenario_name(&doc).unwrap_or_default();
    let smoke = matches!(get("smoke"), Some(Json::Bool(true)));
    println!(
        "# {scenario}{} — {}",
        if smoke { " [smoke]" } else { "" },
        match get("summary") {
            Some(Json::Str(s)) => s.as_str(),
            _ => "",
        }
    );

    println!("## gates (default floors)");
    let mut notes = Vec::new();
    let mut fails = Vec::new();
    scenario_gates(&doc, &GateFloors::default(), &mut notes, &mut fails);
    for n in &notes {
        println!("  PASS {n}");
    }
    for f in &fails {
        println!("  FAIL {f}");
    }
    if notes.is_empty() && fails.is_empty() {
        println!("  (no scenario-specific gates; schema check only)");
    }

    // Fault counters, totalled across rows wherever a scenario recorded
    // them as metrics.
    let mut counters: Vec<(&str, f64)> = Vec::new();
    if let Some(Json::Arr(rows)) = get("rows") {
        for row in rows {
            let Json::Obj(rf) = row else { continue };
            let Some((_, Json::Obj(metrics))) = rf.iter().find(|(k, _)| k == "metrics") else {
                continue;
            };
            for (k, v) in metrics {
                let Some(name) = FAULT_COUNTER_METRICS.iter().find(|m| **m == k.as_str()) else {
                    continue;
                };
                let Json::Num(n) = v else { continue };
                match counters.iter_mut().find(|(c, _)| c == name) {
                    Some((_, total)) => *total += n,
                    None => counters.push((name, *n)),
                }
            }
        }
    }
    if !counters.is_empty() {
        println!("## fault counters (summed over rows)");
        for (k, v) in &counters {
            println!("  {k}={v:.0}");
        }
    }

    if let Some(Json::Obj(tf)) = get("timeline") {
        let tget = |key: &str| {
            tf.iter()
                .find(|(k, _)| k == key)
                .and_then(|(_, v)| match v {
                    Json::Num(n) => Some(*n),
                    _ => None,
                })
        };
        println!("## timeline");
        if let (Some(interval), Some(Json::Arr(samples))) = (
            tget("interval_secs"),
            tf.iter().find(|(k, _)| k == "samples").map(|(_, v)| v),
        ) {
            println!("  {} samples every {interval}s", samples.len());
            let series: Vec<(f64, f64)> = samples
                .iter()
                .filter_map(|s| {
                    let Json::Obj(sf) = s else { return None };
                    let num = |key: &str| {
                        sf.iter()
                            .find(|(k, _)| k == key)
                            .and_then(|(_, v)| match v {
                                Json::Num(n) => Some(*n),
                                _ => None,
                            })
                    };
                    Some((num("t_secs")?, num("heads")?))
                })
                .collect();
            // Inflection points: every sample where the head census moved
            // — the election/merge story of the run in a few lines.
            let mut prev: Option<f64> = None;
            let mut shown = 0;
            for &(t, heads) in &series {
                if prev != Some(heads) {
                    if shown < 12 {
                        println!("  t={t}s heads={heads:.0}");
                    }
                    shown += 1;
                }
                prev = Some(heads);
            }
            if shown > 12 {
                println!("  ... {} more head-census changes", shown - 12);
            }
        }
        for key in [
            "split_at_secs",
            "heal_at_secs",
            "heads_target",
            "remerge_secs_probe",
        ] {
            if let Some(v) = tget(key) {
                println!("  {key}={v}");
            }
        }
        match check_partition_timeline(&doc) {
            Ok(Some(derived)) => println!(
                "  re-merge re-derived from the series: {derived:.3}s (matches probe measurement)"
            ),
            Ok(None) => {}
            Err(e) => println!("  re-merge cross-check FAILED: {e}"),
        }
    }

    if let Some(Json::Obj(pf)) = get("profile") {
        let pget = |key: &str| {
            pf.iter()
                .find(|(k, _)| k == key)
                .and_then(|(_, v)| match v {
                    Json::Num(n) => Some(*n),
                    _ => None,
                })
        };
        println!("## engine profile (wall-clock, non-deterministic)");
        if let (Some(drain), Some(commit), Some(barrier)) = (
            pget("drain_secs"),
            pget("commit_secs"),
            pget("barrier_secs"),
        ) {
            let total = (drain + commit + barrier).max(1e-12);
            println!(
                "  parallel drain {:.0}% / serial commit {:.0}% / barrier {:.0}% of {total:.3}s",
                100.0 * drain / total,
                100.0 * commit / total,
                100.0 * barrier / total,
            );
        }
        for key in ["windows", "barriers", "lane_imbalance", "slices_dropped"] {
            if let Some(v) = pget(key) {
                println!("  {key}={v}");
            }
        }
        if let Some((_, Json::Arr(lanes))) = pf.iter().find(|(k, _)| k == "lane_busy_secs") {
            println!("  lanes={}", lanes.len());
        }
    }
    ExitCode::SUCCESS
}

/// The fault-plane counters surfaced on the console and in `explain` —
/// recorded as row metrics by the scenarios that exercise them.
const FAULT_COUNTER_METRICS: [&str; 4] = [
    "drops_partitioned",
    "byzantine_dropped",
    "byzantine_replayed",
    "drops_queue_full",
];

/// Parsed form of `hvdb-bench run`'s arguments, separated from the
/// side-effecting run loop so flag handling is unit-testable.
struct RunArgs {
    names: Vec<String>,
    all: bool,
    opts: RunOpts,
    out_dir: String,
    /// `--trace-out PATH`: write a Chrome trace-event document of a
    /// trace+profile-enabled paper-geometry run after the scenarios.
    trace_out: Option<String>,
    /// `--trace-filter` category mask (default: all categories).
    trace_mask: u32,
}

fn parse_run_args(args: &[String]) -> Result<RunArgs, String> {
    let mut parsed = RunArgs {
        names: Vec::new(),
        all: false,
        opts: RunOpts::default(),
        out_dir: String::from("."),
        trace_out: None,
        trace_mask: hvdb_sim::trace::ALL,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--all" => parsed.all = true,
            "--smoke" => parsed.opts.smoke = true,
            "--trace-out" => {
                i += 1;
                let Some(path) = args.get(i) else {
                    return Err("--trace-out needs a path".to_string());
                };
                parsed.trace_out = Some(path.clone());
            }
            "--trace-filter" => {
                i += 1;
                let Some(spec) = args.get(i) else {
                    return Err(
                        "--trace-filter needs categories (election,soft-state,fault,flow|all)"
                            .to_string(),
                    );
                };
                parsed.trace_mask = hvdb_sim::trace::parse_mask(spec)?;
            }
            "--threads" => {
                i += 1;
                match args.get(i).and_then(|n| n.parse::<usize>().ok()) {
                    Some(n) if n >= 1 => parsed.opts.threads = n,
                    _ => return Err("--threads needs a positive integer".to_string()),
                }
            }
            "--seeds" => {
                i += 1;
                let Some(list) = args.get(i) else {
                    return Err("--seeds needs a comma-separated list".to_string());
                };
                match list
                    .split(',')
                    .map(str::parse::<u64>)
                    .collect::<Result<Vec<_>, _>>()
                {
                    Ok(seeds) if !seeds.is_empty() => parsed.opts.seeds = Some(seeds),
                    _ => return Err("--seeds needs a comma-separated list of integers".to_string()),
                }
            }
            "--out-dir" => {
                i += 1;
                let Some(dir) = args.get(i) else {
                    return Err("--out-dir needs a path".to_string());
                };
                parsed.out_dir = dir.clone();
            }
            name => parsed.names.push(name.to_string()),
        }
        i += 1;
    }
    Ok(parsed)
}

fn run(args: &[String]) -> ExitCode {
    let RunArgs {
        names,
        all,
        opts,
        out_dir,
        trace_out,
        trace_mask,
    } = match parse_run_args(args) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let defs: Vec<ScenarioDef> = if all {
        registry()
    } else if names.is_empty() {
        eprintln!("no scenario named; use `run --all` or `list`");
        return ExitCode::FAILURE;
    } else {
        let mut defs = Vec::new();
        for name in &names {
            match find(name) {
                Some(def) => defs.push(def),
                None => {
                    eprintln!("unknown scenario: {name} (see `hvdb-bench list`)");
                    return ExitCode::FAILURE;
                }
            }
        }
        defs
    };
    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("cannot create --out-dir {out_dir}: {e}");
        return ExitCode::FAILURE;
    }
    // Run every requested scenario even if one fails — a panic inside one
    // scenario (bad assertion, index bug) must not starve the rest of the
    // registry of coverage — and never exit 0 with a missing or invalid
    // report on disk: CI and the committed trajectory both trust the
    // files this loop leaves behind.
    struct Outcome {
        name: &'static str,
        rows: usize,
        secs: f64,
        error: Option<String>,
    }
    let mut outcomes: Vec<Outcome> = Vec::new();
    for def in &defs {
        let started = std::time::Instant::now();
        let report =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_scenario(def, &opts)));
        let secs = started.elapsed().as_secs_f64();
        let mut outcome = Outcome {
            name: def.name,
            rows: 0,
            secs,
            error: None,
        };
        match report {
            Err(panic) => {
                let msg = panic
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .or_else(|| panic.downcast_ref::<&str>().copied())
                    .unwrap_or("panic with non-string payload");
                eprintln!("scenario {}: PANICKED: {msg}", def.name);
                outcome.error = Some(format!("panicked: {msg}"));
            }
            Ok(report) => {
                print_report(&report);
                outcome.rows = report.rows.len();
                let path = format!("{out_dir}/BENCH_{}.json", def.name);
                let json = format!("{}\n", report.to_json());
                if let Err(e) = validate_report_str(&json) {
                    eprintln!("scenario {}: invalid report: {e}", def.name);
                    outcome.error = Some(format!("invalid report: {e}"));
                } else if let Err(e) = std::fs::write(&path, &json) {
                    eprintln!("cannot write {path}: {e}");
                    outcome.error = Some(format!("cannot write {path}: {e}"));
                } else {
                    println!("wrote {path} ({} rows, {secs:.1}s)\n", report.rows.len());
                }
            }
        }
        outcomes.push(outcome);
    }
    // End-of-run summary: one line per scenario, failures last-but-loud.
    if defs.len() > 1 {
        println!("{:<18} {:>6} {:>8}  status", "scenario", "rows", "secs");
        for o in &outcomes {
            println!(
                "{:<18} {:>6} {:>8.1}  {}",
                o.name,
                o.rows,
                o.secs,
                o.error.as_deref().unwrap_or("ok")
            );
        }
    }
    let mut trace_failed = false;
    if let Some(path) = &trace_out {
        match write_chrome_trace(path, &opts, trace_mask) {
            Ok(events) => println!("wrote {path} ({events} trace events)"),
            Err(e) => {
                eprintln!("--trace-out: {e}");
                trace_failed = true;
            }
        }
    }
    let failures: Vec<&Outcome> = outcomes.iter().filter(|o| o.error.is_some()).collect();
    if failures.is_empty() && !trace_failed {
        ExitCode::SUCCESS
    } else if failures.is_empty() {
        ExitCode::FAILURE
    } else {
        eprintln!(
            "{} of {} scenario(s) failed: {}",
            failures.len(),
            outcomes.len(),
            failures
                .iter()
                .map(|o| o.name)
                .collect::<Vec<_>>()
                .join(", ")
        );
        ExitCode::FAILURE
    }
}

/// Runs the paper geometry (200 nodes, 800x800, the `seed` scenario's
/// HVDB recipe) on the parallel engine with the structured trace at
/// `mask` and detailed profiling enabled, and writes the combined Chrome
/// trace-event document to `path`. Smoke mode shrinks the run the same
/// way the scenarios do. Returns the number of trace events written.
fn write_chrome_trace(path: &str, opts: &RunOpts, mask: u32) -> Result<usize, String> {
    let w = Workload {
        nodes: 200,
        side: 800.0,
        vc_side: 8,
        dim: 4,
        range: 250.0,
        groups: 2,
        members_per_group: 10,
        packets_per_group: 8,
        threads: opts.threads,
        ..Workload::default()
    };
    let w = if opts.smoke { w.smoke() } else { w };
    let scenario = w.build();
    let (_, _, doc) = run_par_hvdb_traced(&scenario, 16, mask);
    let events = match &doc {
        Json::Obj(fields) => fields
            .iter()
            .find(|(k, _)| k == "traceEvents")
            .map(|(_, v)| match v {
                Json::Arr(a) => a.len(),
                _ => 0,
            })
            .unwrap_or(0),
        _ => 0,
    };
    std::fs::write(path, format!("{doc}\n")).map_err(|e| format!("cannot write {path}: {e}"))?;
    Ok(events)
}

fn print_report(report: &ScenarioReport) {
    println!(
        "# {} ({}): {}{}",
        report.scenario,
        report.figure,
        report.summary,
        if report.smoke { " [smoke]" } else { "" }
    );
    let mut current_sweep = String::new();
    for row in &report.rows {
        if row.sweep != current_sweep {
            current_sweep = row.sweep.clone();
            println!("## {current_sweep}");
        }
        let metrics: Vec<String> = row
            .metrics
            .iter()
            .map(|(k, v)| {
                if v.fract() == 0.0 && v.abs() < 9e15 {
                    format!("{k}={v:.0}")
                } else {
                    format!("{k}={v:.3}")
                }
            })
            .collect();
        println!(
            "  {:<22} {:<12} {}",
            row.label,
            row.proto,
            metrics.join(" ")
        );
    }
    // Fault-plane counters, totalled across rows: visible on the console
    // at a glance instead of only inside the JSON metric maps.
    let mut totals: Vec<(&str, f64)> = Vec::new();
    for row in &report.rows {
        for (k, v) in &row.metrics {
            if let Some(name) = FAULT_COUNTER_METRICS.iter().find(|m| *m == k) {
                match totals.iter_mut().find(|(n, _)| n == name) {
                    Some((_, total)) => *total += v,
                    None => totals.push((name, *v)),
                }
            }
        }
    }
    if !totals.is_empty() {
        let joined: Vec<String> = totals.iter().map(|(k, v)| format!("{k}={v:.0}")).collect();
        println!("## fault counters: {}", joined.join(" "));
    }
}

#[cfg(test)]
mod tests {
    use super::parse_run_args;

    fn argv(raw: &[&str]) -> Vec<String> {
        raw.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn all_with_threads_parses_both_flags() {
        let parsed = parse_run_args(&argv(&["--all", "--threads", "4"])).unwrap();
        assert!(parsed.all);
        assert_eq!(parsed.opts.threads, 4);
        assert!(parsed.names.is_empty());
        assert!(!parsed.opts.smoke);
        assert_eq!(parsed.out_dir, ".");
    }

    #[test]
    fn scenario_names_and_options_coexist() {
        let parsed = parse_run_args(&argv(&[
            "scale",
            "--smoke",
            "--threads",
            "2",
            "--seeds",
            "7,8",
            "--out-dir",
            "/tmp/x",
        ]))
        .unwrap();
        assert_eq!(parsed.names, vec!["scale"]);
        assert!(!parsed.all);
        assert!(parsed.opts.smoke);
        assert_eq!(parsed.opts.threads, 2);
        assert_eq!(parsed.opts.seeds.as_deref(), Some(&[7, 8][..]));
        assert_eq!(parsed.out_dir, "/tmp/x");
    }

    #[test]
    fn bad_flag_values_are_rejected() {
        assert!(parse_run_args(&argv(&["--threads", "0"])).is_err());
        assert!(parse_run_args(&argv(&["--threads"])).is_err());
        assert!(parse_run_args(&argv(&["--seeds", ""])).is_err());
        assert!(parse_run_args(&argv(&["--out-dir"])).is_err());
    }

    #[test]
    fn trace_flags_parse() {
        let parsed = parse_run_args(&argv(&["seed", "--trace-out", "/tmp/t.json"])).unwrap();
        assert_eq!(parsed.trace_out.as_deref(), Some("/tmp/t.json"));
        assert_eq!(
            parsed.trace_mask,
            hvdb_sim::trace::ALL,
            "default: all categories"
        );
        let parsed = parse_run_args(&argv(&[
            "seed",
            "--trace-out",
            "t.json",
            "--trace-filter",
            "fault,election",
        ]))
        .unwrap();
        assert_eq!(
            parsed.trace_mask,
            hvdb_sim::trace::FAULT | hvdb_sim::trace::ELECTION
        );
        assert!(parse_run_args(&argv(&["--trace-out"])).is_err());
        assert!(parse_run_args(&argv(&["--trace-filter", "bogus"])).is_err());
        assert!(parse_run_args(&argv(&["--trace-filter"])).is_err());
    }
}
