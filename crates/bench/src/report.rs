//! Uniform experiment reports and their JSON serialization.
//!
//! Every scenario — declarative sweep or bespoke structural audit —
//! produces the same shape: a [`ScenarioReport`] holding [`Row`]s, each a
//! `(sweep, label, proto)` coordinate with a flat map of named metrics.
//! Reports serialize to `BENCH_<scenario>.json` through the small
//! [`Json`] value type below (hand-rolled because the workspace builds
//! offline; the emitted documents are plain standard JSON).

use std::fmt;

/// One measured point: a sweep coordinate, the protocol (or `"-"` for
/// structural rows), and named metric values.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Which sweep axis of the scenario this row belongs to (e.g.
    /// `"network-size"`).
    pub sweep: String,
    /// The coordinate on that axis (e.g. `"nodes=500"`).
    pub label: String,
    /// Protocol name, or `"-"` for protocol-independent rows.
    pub proto: String,
    /// Named metric values, in stable order.
    pub metrics: Vec<(String, f64)>,
}

impl Row {
    /// Builds a row.
    pub fn new(
        sweep: impl Into<String>,
        label: impl Into<String>,
        proto: impl Into<String>,
        metrics: Vec<(String, f64)>,
    ) -> Self {
        Row {
            sweep: sweep.into(),
            label: label.into(),
            proto: proto.into(),
            metrics,
        }
    }
}

/// A finished scenario run.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioReport {
    /// Registry name (`BENCH_<scenario>.json` stem).
    pub scenario: String,
    /// Paper figure / claim the scenario reproduces.
    pub figure: String,
    /// One-line description.
    pub summary: String,
    /// Whether this was a shrunk smoke run (numbers not meaningful).
    pub smoke: bool,
    /// Worker-thread count the run was invoked with (`--threads`, default
    /// 1). Recorded in every report so a wall-clock number can always be
    /// traced back to its parallelism; deterministic metrics are identical
    /// at every value.
    pub threads: usize,
    /// The scenario's declarative workload block — currently the
    /// serialized fault plan for scenarios that inject one
    /// ([`crate::scenario::fault_plan_json`]). `None` (and absent from
    /// the JSON document) for scenarios without scripted faults, keeping
    /// historical reports byte-stable.
    pub workload: Option<Json>,
    /// Optional sim-time metrics timeline: periodic snapshots (head
    /// census, cumulative delivery, backlog, memory) that make transient
    /// claims — e.g. "re-merge within 5 s of heal" — derivable from the
    /// report itself. Deterministic; absent from the JSON when `None`.
    pub timeline: Option<Json>,
    /// Optional wall-clock engine profile (parallel drain / serial
    /// commit / barrier phase times, per-lane busy time).
    /// **Non-deterministic**: excluded from golden and trajectory
    /// comparisons, which read only `rows`. Absent when `None`.
    pub profile: Option<Json>,
    /// The measurements.
    pub rows: Vec<Row>,
}

impl ScenarioReport {
    /// The report as a JSON document.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("scenario".into(), Json::Str(self.scenario.clone())),
            ("figure".into(), Json::Str(self.figure.clone())),
            ("summary".into(), Json::Str(self.summary.clone())),
            ("smoke".into(), Json::Bool(self.smoke)),
            ("threads".into(), Json::Num(self.threads as f64)),
        ];
        if let Some(w) = &self.workload {
            fields.push(("workload".into(), w.clone()));
        }
        if let Some(t) = &self.timeline {
            fields.push(("timeline".into(), t.clone()));
        }
        if let Some(p) = &self.profile {
            fields.push(("profile".into(), p.clone()));
        }
        fields.push((
            "rows".into(),
            Json::Arr(
                self.rows
                    .iter()
                    .map(|r| {
                        Json::Obj(vec![
                            ("sweep".into(), Json::Str(r.sweep.clone())),
                            ("label".into(), Json::Str(r.label.clone())),
                            ("proto".into(), Json::Str(r.proto.clone())),
                            (
                                "metrics".into(),
                                Json::Obj(
                                    r.metrics
                                        .iter()
                                        .map(|(k, v)| (k.clone(), Json::Num(*v)))
                                        .collect(),
                                ),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ));
        Json::Obj(fields)
    }
}

/// A JSON value (serialization only).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number; non-finite values serialize as `null`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with stable key order.
    Obj(Vec<(String, Json)>),
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.write_indented(f, 0)
    }
}

impl Json {
    fn write_indented(&self, f: &mut fmt::Formatter<'_>, depth: usize) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if !n.is_finite() {
                    write!(f, "null")
                } else if n.fract() == 0.0 && n.abs() < 9e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    return write!(f, "[]");
                }
                writeln!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    indent(f, depth + 1)?;
                    item.write_indented(f, depth + 1)?;
                    if i + 1 < items.len() {
                        write!(f, ",")?;
                    }
                    writeln!(f)?;
                }
                indent(f, depth)?;
                write!(f, "]")
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    return write!(f, "{{}}");
                }
                writeln!(f, "{{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    indent(f, depth + 1)?;
                    write_escaped(f, k)?;
                    write!(f, ": ")?;
                    v.write_indented(f, depth + 1)?;
                    if i + 1 < fields.len() {
                        write!(f, ",")?;
                    }
                    writeln!(f)?;
                }
                indent(f, depth)?;
                write!(f, "}}")
            }
        }
    }
}

fn indent(f: &mut fmt::Formatter<'_>, depth: usize) -> fmt::Result {
    for _ in 0..depth {
        write!(f, "  ")?;
    }
    Ok(())
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    write!(f, "\"")?;
    for c in s.chars() {
        match c {
            '"' => write!(f, "\\\"")?,
            '\\' => write!(f, "\\\\")?,
            '\n' => write!(f, "\\n")?,
            '\r' => write!(f, "\\r")?,
            '\t' => write!(f, "\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    write!(f, "\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Json::Num(42.0).to_string(), "42");
        assert_eq!(Json::Num(0.5).to_string(), "0.5");
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
    }

    #[test]
    fn strings_escape() {
        assert_eq!(
            Json::Str("a\"b\\c\nd".into()).to_string(),
            "\"a\\\"b\\\\c\\nd\""
        );
    }

    #[test]
    fn report_shape() {
        let rep = ScenarioReport {
            scenario: "x".into(),
            figure: "Fig. 0".into(),
            summary: "s".into(),
            smoke: false,
            threads: 1,
            workload: None,
            timeline: None,
            profile: None,
            rows: vec![Row::new(
                "axis",
                "n=1",
                "hvdb",
                vec![("delivery".into(), 1.0)],
            )],
        };
        let s = rep.to_json().to_string();
        assert!(s.contains("\"scenario\": \"x\""));
        assert!(s.contains("\"threads\": 1"));
        assert!(s.contains("\"delivery\": 1"));
        assert!(
            !s.contains("\"workload\""),
            "absent workload keeps legacy reports byte-stable"
        );
        assert!(
            !s.contains("\"timeline\"") && !s.contains("\"profile\""),
            "absent observability blocks keep legacy reports byte-stable"
        );
        let with = ScenarioReport {
            workload: Some(Json::Obj(vec![("fault_plan".into(), Json::Arr(vec![]))])),
            timeline: Some(Json::Obj(vec![("interval_secs".into(), Json::Num(5.0))])),
            profile: Some(Json::Obj(vec![("windows".into(), Json::Num(10.0))])),
            ..rep
        };
        let s = with.to_json().to_string();
        assert!(s.contains("\"workload\""));
        assert!(s.contains("\"fault_plan\""));
        let w = s.find("\"workload\"").unwrap();
        let t = s.find("\"timeline\"").unwrap();
        let p = s.find("\"profile\"").unwrap();
        let r = s.find("\"rows\"").unwrap();
        assert!(w < t && t < p && p < r, "stable block order");
    }
}
