//! Protocol runners: execute one scenario under each protocol and collect
//! uniform metrics. Sweeps parallelise across (scenario, seed) with rayon —
//! each simulation stays single-threaded and deterministic.

use crate::report::Json;
use crate::workload::{is_refresh_class, metrics_of, RunMetrics, Scenario, Workload};
use hvdb_baselines::{
    DsmProtocol, FloodingProtocol, ParFlood, ParFloodMsg, ParFloodNode, SharedTreeProtocol,
    SpbmProtocol,
};
use hvdb_core::{HvdbConfig, HvdbProtocol};
use hvdb_sim::{EngineProfile, ParSimulator, SimDuration, Simulator, Trace, TraceConfig};
use rayon::prelude::*;

/// The protocols under comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Proto {
    /// The paper's contribution.
    Hvdb,
    /// Network-wide flooding.
    Flooding,
    /// Core-rooted shared tree.
    SharedTree,
    /// DSM-style global snapshots.
    Dsm,
    /// SPBM-style quad-tree aggregation.
    Spbm,
}

impl Proto {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Proto::Hvdb => "hvdb",
            Proto::Flooding => "flooding",
            Proto::SharedTree => "shared-tree",
            Proto::Dsm => "dsm",
            Proto::Spbm => "spbm",
        }
    }

    /// All protocols.
    pub const ALL: [Proto; 5] = [
        Proto::Hvdb,
        Proto::Flooding,
        Proto::SharedTree,
        Proto::Dsm,
        Proto::Spbm,
    ];
}

/// Runs one scenario under one protocol and returns the metrics.
pub fn run_one(proto: Proto, scenario: &Scenario) -> RunMetrics {
    let (metrics, _) = run_one_instrumented(proto, scenario);
    metrics
}

/// Per-run instrumentation beyond the uniform [`RunMetrics`], available
/// when the protocol exposes it (currently HVDB's internal counters).
#[derive(Debug, Clone, Default)]
pub struct RunDetail {
    /// HVDB protocol counters (`None` for baselines).
    pub hvdb_counters: Option<hvdb_core::Counters>,
    /// Refresh-plane frames transmitted (refresh-originated floods
    /// including their relays; 0 for baselines) — the traffic the
    /// adaptive refresh controller suppresses in quiet phases.
    pub refresh_frames: u64,
    /// Protocol callbacks dispatched by the engine
    /// ([`hvdb_sim::Stats::events_processed`]): identical across
    /// delivery modes on the same workload, making events/s a pure
    /// wall-clock speedup for the `perf` scenario.
    pub events_processed: u64,
    /// Wall-clock seconds spent inside [`Simulator::run`].
    pub wall_secs: f64,
    /// Simulated seconds actually advanced across those `run` calls
    /// (resume-safe, unlike reading the scenario horizon: a resumed run
    /// advances the clock once per segment, not once per call).
    pub sim_secs: f64,
    /// Deliveries served from a shared broadcast payload.
    pub frames_shared: u64,
    /// Per-receiver payload clones in the legacy delivery mode.
    pub frames_cloned: u64,
    /// Traffic-plane delivery profile (histogram quantiles, per-flow
    /// goodput, pacing drops). Meaningful whenever data was delivered;
    /// flow/jitter/hop figures need flow-tagged traffic.
    pub traffic: TrafficProfile,
    /// End-of-run content bytes of world + protocol state divided by the
    /// node count: the `scale` scenario's footprint column. Deterministic
    /// (entry counts × entry sizes, not allocator capacity), so CI can
    /// gate it against a committed baseline. 0.0 where the protocol does
    /// not expose a state estimate (baselines).
    pub memory_per_node_bytes: f64,
    /// Frames refused because sender and receiver sat in different
    /// islands of an active partition ([`hvdb_sim::Stats::drops_partitioned`]).
    pub drops_partitioned: u64,
    /// Frames a Byzantine node silently dropped at its own interface
    /// ([`hvdb_sim::Stats::byzantine_dropped`]).
    pub byzantine_dropped: u64,
    /// Stale duplicates Byzantine replay nodes put on the air
    /// ([`hvdb_sim::Stats::byzantine_replayed`]).
    pub byzantine_replayed: u64,
    /// Max/mean per-lane busy-time ratio from the parallel engine's
    /// profiler (1.0 = perfectly balanced lanes; 0.0 for serial-engine
    /// runs, which have no lanes). Wall-clock derived: report it, never
    /// gate on it.
    pub lane_imbalance: f64,
    /// The parallel engine's wall-clock phase profile (`None` for
    /// serial-engine runs). Non-deterministic; serialized via
    /// [`profile_json`] into the report's excluded `profile` block.
    pub engine_profile: Option<EngineProfile>,
}

/// Histogram-derived delivery profile of one run: the traffic scenario's
/// row material. Latency/jitter quantiles are bucket-resolution
/// (±~3%, extremes exact); 0.0 where nothing was recorded.
#[derive(Debug, Clone, Default)]
pub struct TrafficProfile {
    /// Median end-to-end latency, ms.
    pub p50_ms: f64,
    /// 99th-percentile latency, ms.
    pub p99_ms: f64,
    /// 99.9th-percentile latency, ms.
    pub p999_ms: f64,
    /// Mean receiver-observed delay variation, ms.
    pub jitter_mean_ms: f64,
    /// 99th-percentile delay variation, ms.
    pub jitter_p99_ms: f64,
    /// Mean physical hops per delivery (flow-tagged traffic only).
    pub hops_mean: f64,
    /// 99th-percentile hops.
    pub hops_p99: f64,
    /// Packets originated by traffic-plane flows.
    pub flow_sent: u64,
    /// Distinct (packet, receiver) deliveries across flows.
    pub flow_delivered: u64,
    /// Sends refused by the interface-queue cap.
    pub drops_queue_full: u64,
}

/// Extracts the delivery profile from a finished simulation's stats.
pub fn traffic_profile_of(stats: &hvdb_sim::Stats) -> TrafficProfile {
    let lat_ms = |q: f64| stats.latency_quantile(q).map_or(0.0, |s| s * 1e3);
    let jitter = stats.flows().merged_jitter();
    let hops = stats.flows().merged_hops();
    TrafficProfile {
        p50_ms: lat_ms(0.50),
        p99_ms: lat_ms(0.99),
        p999_ms: lat_ms(0.999),
        jitter_mean_ms: jitter.mean().unwrap_or(0.0) / 1e3,
        jitter_p99_ms: jitter.quantile(0.99).unwrap_or(0) as f64 / 1e3,
        hops_mean: hops.mean().unwrap_or(0.0),
        hops_p99: hops.quantile(0.99).unwrap_or(0) as f64,
        flow_sent: stats.flows().total_sent(),
        flow_delivered: stats.flows().total_delivered(),
        drops_queue_full: stats.drops_queue_full,
    }
}

/// Collects the engine-side instrumentation common to every protocol.
fn engine_detail<M: Clone>(sim: &Simulator<M>) -> RunDetail {
    RunDetail {
        hvdb_counters: None,
        refresh_frames: sim.stats().msgs_where(is_refresh_class),
        events_processed: sim.stats().events_processed,
        wall_secs: sim.wall_secs(),
        sim_secs: sim.sim_secs(),
        frames_shared: sim.stats().frames_shared,
        frames_cloned: sim.stats().frames_cloned,
        traffic: traffic_profile_of(sim.stats()),
        memory_per_node_bytes: 0.0,
        drops_partitioned: sim.stats().drops_partitioned,
        byzantine_dropped: sim.stats().byzantine_dropped,
        byzantine_replayed: sim.stats().byzantine_replayed,
        lane_imbalance: 0.0,
        engine_profile: None,
    }
}

/// Runs one scenario under one protocol, returning metrics plus
/// protocol-specific instrumentation. The scripted fault plan in
/// [`Scenario::faults`] is injected for every protocol, so fault
/// comparisons stay apples-to-apples.
pub fn run_one_instrumented(proto: Proto, scenario: &Scenario) -> (RunMetrics, RunDetail) {
    match proto {
        Proto::Hvdb => run_hvdb(scenario),
        Proto::Flooding => {
            let mut sim = new_sim(scenario);
            let mut p = FloodingProtocol::new(
                &scenario.members,
                scenario.traffic.clone(),
                scenario.group_events.clone(),
            );
            sim.run(&mut p, scenario.until);
            (metrics_of(sim.stats()), engine_detail(&sim))
        }
        Proto::SharedTree => {
            let mut sim = new_sim(scenario);
            let mut p = SharedTreeProtocol::new(
                &scenario.members,
                scenario.traffic.clone(),
                scenario.group_events.clone(),
            );
            sim.run(&mut p, scenario.until);
            (metrics_of(sim.stats()), engine_detail(&sim))
        }
        Proto::Dsm => {
            let mut sim = new_sim(scenario);
            let mut p = DsmProtocol::new(
                &scenario.members,
                scenario.traffic.clone(),
                scenario.group_events.clone(),
            );
            sim.run(&mut p, scenario.until);
            (metrics_of(sim.stats()), engine_detail(&sim))
        }
        Proto::Spbm => {
            let mut sim = new_sim(scenario);
            let mut p = SpbmProtocol::new(
                &scenario.members,
                scenario.traffic.clone(),
                scenario.group_events.clone(),
            );
            sim.run(&mut p, scenario.until);
            (metrics_of(sim.stats()), engine_detail(&sim))
        }
    }
}

/// The one canonical HVDB run recipe (every scenario that measures HVDB
/// goes through here, so the CI-gated trajectory numbers and the
/// registry sweeps measure the same simulation).
fn run_hvdb(scenario: &Scenario) -> (RunMetrics, RunDetail) {
    let mut sim = new_sim(scenario);
    let mut p = HvdbProtocol::new(
        scenario.hvdb.clone(),
        &scenario.members,
        scenario.traffic.clone(),
        scenario.group_events.clone(),
    );
    sim.run(&mut p, scenario.until);
    let n = sim.world().len().max(1);
    let detail = RunDetail {
        hvdb_counters: Some(p.counters()),
        memory_per_node_bytes: (sim.world().memory_bytes() + p.memory_bytes()) as f64 / n as f64,
        ..engine_detail(&sim)
    };
    (metrics_of(sim.stats()), detail)
}

/// Runs HVDB with `tweak` applied to the scenario's derived config first
/// (e.g. disabling the adaptive refresh controller for a fixed-rate
/// comparison arm), through the same recipe as [`run_one_instrumented`].
pub fn run_hvdb_tweaked(
    scenario: &Scenario,
    tweak: &dyn Fn(&mut HvdbConfig),
) -> (RunMetrics, RunDetail) {
    let mut scenario = scenario.clone();
    tweak(&mut scenario.hvdb);
    run_hvdb(&scenario)
}

/// Runs the scenario's traffic script under flooding on the **sharded
/// parallel engine** ([`ParSimulator`] + [`ParFlood`]) with `shards`
/// shards and the scenario's [`Scenario::threads`] worker threads. The
/// `perf` scenario's `engine-threads` arm: deterministic metrics are
/// byte-identical at every thread count (the engine's contract), so only
/// wall-clock moves with `threads`. The scenario's fault plan is
/// injected exactly as [`run_one_instrumented`] does.
pub fn run_par_flood(scenario: &Scenario, shards: usize) -> (RunMetrics, RunDetail) {
    let mut sim: ParSimulator<ParFloodNode, ParFloodMsg> = ParSimulator::new(
        scenario.sim.clone(),
        scenario.hvdb_mobility(),
        shards,
        scenario.threads,
    );
    sim.inject_plan(&scenario.faults);
    let p = ParFlood::new(
        &scenario.members,
        scenario.traffic.clone(),
        scenario.group_events.clone(),
    );
    sim.run(&p, scenario.until);
    let detail = RunDetail {
        hvdb_counters: None,
        refresh_frames: sim.stats().msgs_where(is_refresh_class),
        events_processed: sim.stats().events_processed,
        wall_secs: sim.wall_secs(),
        sim_secs: sim.sim_secs(),
        frames_shared: sim.stats().frames_shared,
        frames_cloned: sim.stats().frames_cloned,
        traffic: traffic_profile_of(sim.stats()),
        memory_per_node_bytes: 0.0,
        drops_partitioned: sim.stats().drops_partitioned,
        byzantine_dropped: sim.stats().byzantine_dropped,
        byzantine_replayed: sim.stats().byzantine_replayed,
        lane_imbalance: sim.profile().lane_imbalance(),
        engine_profile: Some(sim.profile().clone()),
    };
    (metrics_of(sim.stats()), detail)
}

/// Runs **HVDB itself** on the sharded parallel engine: the same
/// [`HvdbCore`](hvdb_core::HvdbCore) recipe the serial runner wraps,
/// driven as a [`hvdb_sim::ParProtocol`] with `shards` shards and the
/// scenario's [`Scenario::threads`] worker threads. Metrics are
/// byte-identical at every thread count (the engine's determinism
/// contract, exercised by `crates/core/tests/par_protocol.rs`), so
/// thread count moves only wall-clock. This is the recipe behind the
/// `scale` scenario's large-N rows and its `engine-threads` sweep.
pub fn run_par_hvdb(scenario: &Scenario, shards: usize) -> (RunMetrics, RunDetail) {
    let mut sim = par_hvdb_sim(scenario, shards);
    let core = par_hvdb_core(scenario);
    sim.run(&core, scenario.until);
    (metrics_of(sim.stats()), par_hvdb_detail(&sim))
}

/// The parallel-HVDB simulator type every par-engine runner drives.
pub type ParHvdbSim = ParSimulator<hvdb_core::HvdbNode, hvdb_core::FrameBytes>;

fn par_hvdb_sim(scenario: &Scenario, shards: usize) -> ParHvdbSim {
    let mut sim: ParHvdbSim = ParSimulator::new(
        scenario.sim.clone(),
        scenario.hvdb_mobility(),
        shards,
        scenario.threads,
    );
    sim.inject_plan(&scenario.faults);
    sim
}

fn par_hvdb_core(scenario: &Scenario) -> hvdb_core::HvdbCore {
    hvdb_core::HvdbCore::new(
        scenario.hvdb.clone(),
        &scenario.members,
        scenario.traffic.clone(),
        scenario.group_events.clone(),
    )
}

fn par_hvdb_detail(sim: &ParHvdbSim) -> RunDetail {
    let n = sim.world().len().max(1);
    let mut counters = hvdb_core::Counters::default();
    let mut state_bytes = 0usize;
    for id in sim.world().ids().collect::<Vec<_>>() {
        if let Some(node) = sim.node_state(id) {
            counters += node.counters();
            state_bytes += node.memory_bytes();
        }
    }
    RunDetail {
        hvdb_counters: Some(counters),
        refresh_frames: sim.stats().msgs_where(is_refresh_class),
        events_processed: sim.stats().events_processed,
        wall_secs: sim.wall_secs(),
        sim_secs: sim.sim_secs(),
        frames_shared: sim.stats().frames_shared,
        frames_cloned: sim.stats().frames_cloned,
        traffic: traffic_profile_of(sim.stats()),
        memory_per_node_bytes: (sim.world().memory_bytes() + state_bytes) as f64 / n as f64,
        drops_partitioned: sim.stats().drops_partitioned,
        byzantine_dropped: sim.stats().byzantine_dropped,
        byzantine_replayed: sim.stats().byzantine_replayed,
        lane_imbalance: sim.profile().lane_imbalance(),
        engine_profile: Some(sim.profile().clone()),
    }
}

/// One sim-time metrics snapshot of a running simulation: the timeline
/// sampler's row material. All fields are cumulative-to-`t_secs` (or an
/// instantaneous census, for `heads`), so transients like a partition's
/// head-count spike and re-merge are derivable from consecutive samples.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TimelineSample {
    /// Simulation time of the snapshot, seconds.
    pub t_secs: f64,
    /// Instantaneous cluster-head census.
    pub heads: u64,
    /// Cumulative delivery ratio so far.
    pub delivery: f64,
    /// Cumulative control frames transmitted.
    pub control_frames: u64,
    /// Cumulative refresh-plane frames transmitted.
    pub refresh_frames: u64,
    /// Cumulative sends refused by the interface-queue cap (backlog
    /// pressure indicator).
    pub drops_queue_full: u64,
    /// Cumulative protocol callbacks dispatched.
    pub events_processed: u64,
    /// Current content bytes of world + protocol state per node.
    pub memory_per_node_bytes: f64,
}

/// Builds a snapshot from a serial simulation mid-run. `heads` and
/// `memory_per_node_bytes` depend on the protocol's state shape, so the
/// caller supplies them (e.g. `proto.cluster_heads().len()`).
pub fn sample_serial<M: Clone>(
    sim: &Simulator<M>,
    heads: u64,
    memory_per_node_bytes: f64,
) -> TimelineSample {
    let m = metrics_of(sim.stats());
    TimelineSample {
        t_secs: sim.now().0 as f64 / 1e6,
        heads,
        delivery: m.delivery,
        control_frames: m.control_msgs,
        refresh_frames: sim.stats().msgs_where(is_refresh_class),
        drops_queue_full: sim.stats().drops_queue_full,
        events_processed: sim.stats().events_processed,
        memory_per_node_bytes,
    }
}

/// Builds a snapshot from a parallel HVDB simulation mid-run.
pub fn sample_par_hvdb(sim: &ParHvdbSim) -> TimelineSample {
    let n = sim.world().len().max(1);
    let mut heads = 0u64;
    let mut state_bytes = 0usize;
    for id in sim.world().ids().collect::<Vec<_>>() {
        if let Some(node) = sim.node_state(id) {
            if node.is_head() {
                heads += 1;
            }
            state_bytes += node.memory_bytes();
        }
    }
    let m = metrics_of(sim.stats());
    TimelineSample {
        t_secs: sim.now().0 as f64 / 1e6,
        heads,
        delivery: m.delivery,
        control_frames: m.control_msgs,
        refresh_frames: sim.stats().msgs_where(is_refresh_class),
        drops_queue_full: sim.stats().drops_queue_full,
        events_processed: sim.stats().events_processed,
        memory_per_node_bytes: (sim.world().memory_bytes() + state_bytes) as f64 / n as f64,
    }
}

/// Runs HVDB on the parallel engine exactly as [`run_par_hvdb`], but
/// stepped at `interval` so a [`TimelineSample`] is taken at each step.
/// Stepping a deterministic engine at fixed horizons does not change its
/// event schedule, so metrics are byte-identical to the unstepped run.
pub fn run_par_hvdb_timeline(
    scenario: &Scenario,
    shards: usize,
    interval: SimDuration,
) -> (RunMetrics, RunDetail, Vec<TimelineSample>) {
    let mut sim = par_hvdb_sim(scenario, shards);
    let core = par_hvdb_core(scenario);
    let mut samples = Vec::new();
    let mut t = hvdb_sim::SimTime::ZERO;
    while t < scenario.until {
        t = std::cmp::min(t + interval, scenario.until);
        sim.run(&core, t);
        samples.push(sample_par_hvdb(&sim));
    }
    (metrics_of(sim.stats()), par_hvdb_detail(&sim), samples)
}

/// Runs HVDB on the parallel engine with the structured trace enabled at
/// `mask` and detailed profiling on, returning the usual outputs plus the
/// Chrome trace-event document ([`chrome_trace_json`]) for `--trace-out`.
pub fn run_par_hvdb_traced(
    scenario: &Scenario,
    shards: usize,
    mask: u32,
) -> (RunMetrics, RunDetail, Json) {
    let mut sim = par_hvdb_sim(scenario, shards);
    sim.set_trace(TraceConfig::with_mask(mask));
    sim.set_profile_detail(true);
    let core = par_hvdb_core(scenario);
    sim.run(&core, scenario.until);
    let doc = chrome_trace_json(sim.profile(), sim.trace());
    (metrics_of(sim.stats()), par_hvdb_detail(&sim), doc)
}

/// Serializes a timeline as the report's `timeline` block: the sampling
/// cadence, scenario-specific annotations (e.g. split/heal instants),
/// and the sample series.
pub fn timeline_json(
    interval_secs: f64,
    annotations: Vec<(String, Json)>,
    samples: &[TimelineSample],
) -> Json {
    let mut fields = vec![("interval_secs".to_string(), Json::Num(interval_secs))];
    fields.extend(annotations);
    fields.push((
        "samples".into(),
        Json::Arr(
            samples
                .iter()
                .map(|s| {
                    Json::Obj(vec![
                        ("t_secs".into(), Json::Num(s.t_secs)),
                        ("heads".into(), Json::Num(s.heads as f64)),
                        ("delivery".into(), Json::Num(s.delivery)),
                        ("control_frames".into(), Json::Num(s.control_frames as f64)),
                        ("refresh_frames".into(), Json::Num(s.refresh_frames as f64)),
                        (
                            "drops_queue_full".into(),
                            Json::Num(s.drops_queue_full as f64),
                        ),
                        (
                            "events_processed".into(),
                            Json::Num(s.events_processed as f64),
                        ),
                        (
                            "memory_per_node_bytes".into(),
                            Json::Num(s.memory_per_node_bytes),
                        ),
                    ])
                })
                .collect(),
        ),
    ));
    Json::Obj(fields)
}

/// Serializes an [`EngineProfile`] as the report's `profile` block —
/// phase aggregates and lane busy times only (per-occurrence slices stay
/// in the Chrome trace export). Wall-clock derived and therefore
/// non-deterministic: `validate` accepts it structurally, golden and
/// trajectory comparisons never read it.
pub fn profile_json(profile: &EngineProfile) -> Json {
    Json::Obj(vec![
        ("windows".into(), Json::Num(profile.windows as f64)),
        ("barriers".into(), Json::Num(profile.barriers as f64)),
        ("drain_secs".into(), Json::Num(profile.drain_secs)),
        ("commit_secs".into(), Json::Num(profile.commit_secs)),
        ("barrier_secs".into(), Json::Num(profile.barrier_secs)),
        (
            "lane_busy_secs".into(),
            Json::Arr(
                profile
                    .lane_busy_secs
                    .iter()
                    .map(|s| Json::Num(*s))
                    .collect(),
            ),
        ),
        ("lane_imbalance".into(), Json::Num(profile.lane_imbalance())),
        (
            "slices_dropped".into(),
            Json::Num(profile.slices_dropped as f64),
        ),
    ])
}

/// Builds a Chrome trace-event (Perfetto-loadable) document from a run's
/// profiler slices and structured trace. Profiler phases render as
/// complete (`"X"`) slices under pid 1 (tid 0 = engine phases, tid ≥ 1 =
/// lane index + 1, wall-clock µs); protocol trace events render as
/// instants (`"i"`) under pid 2 with **sim-time** µs timestamps and
/// tid = node id.
pub fn chrome_trace_json(profile: &EngineProfile, trace: &Trace) -> Json {
    let mut events: Vec<Json> = Vec::new();
    for s in &profile.slices {
        let tid = if s.lane == u32::MAX {
            0.0
        } else {
            s.lane as f64 + 1.0
        };
        events.push(Json::Obj(vec![
            ("name".into(), Json::Str(s.phase.into())),
            ("ph".into(), Json::Str("X".into())),
            ("ts".into(), Json::Num(s.start_us as f64)),
            ("dur".into(), Json::Num(s.dur_us as f64)),
            ("pid".into(), Json::Num(1.0)),
            ("tid".into(), Json::Num(tid)),
        ]));
    }
    for ev in trace.events() {
        events.push(Json::Obj(vec![
            ("name".into(), Json::Str(ev.kind.name().into())),
            ("ph".into(), Json::Str("i".into())),
            ("s".into(), Json::Str("g".into())),
            ("ts".into(), Json::Num(ev.at.0 as f64)),
            ("pid".into(), Json::Num(2.0)),
            ("tid".into(), Json::Num(ev.node.0 as f64)),
        ]));
    }
    Json::Obj(vec![("traceEvents".into(), Json::Arr(events))])
}

/// Builds the simulator for a run: fresh mobility instance plus the
/// scenario's scripted fault plan.
fn new_sim<M: Clone>(scenario: &Scenario) -> Simulator<M> {
    let mut sim = Simulator::new(scenario.sim.clone(), scenario.hvdb_mobility());
    sim.inject_plan(&scenario.faults);
    sim
}

impl Scenario {
    /// Builds the mobility model for a run (each run needs its own boxed
    /// instance).
    pub fn hvdb_mobility(&self) -> Box<dyn hvdb_sim::Mobility> {
        self.mobility_kind.build()
    }
}

/// Averages metrics over `seeds` independent runs of `workload` under
/// `proto`, in parallel.
pub fn run_seeds(proto: Proto, workload: &Workload, seeds: &[u64]) -> RunMetrics {
    let results: Vec<RunMetrics> = seeds
        .par_iter()
        .map(|seed| {
            let w = Workload {
                seed: *seed,
                ..workload.clone()
            };
            run_one(proto, &w.build())
        })
        .collect();
    average(&results)
}

/// Component-wise mean of run metrics.
pub fn average(runs: &[RunMetrics]) -> RunMetrics {
    let n = runs.len().max(1) as f64;
    RunMetrics {
        delivery: runs.iter().map(|r| r.delivery).sum::<f64>() / n,
        latency: runs.iter().map(|r| r.latency).sum::<f64>() / n,
        control_msgs: (runs.iter().map(|r| r.control_msgs).sum::<u64>() as f64 / n) as u64,
        control_bytes: (runs.iter().map(|r| r.control_bytes).sum::<u64>() as f64 / n) as u64,
        data_msgs: (runs.iter().map(|r| r.data_msgs).sum::<u64>() as f64 / n) as u64,
        data_bytes: (runs.iter().map(|r| r.data_bytes).sum::<u64>() as f64 / n) as u64,
        jain: runs.iter().map(|r| r.jain).sum::<f64>() / n,
        max_mean: runs.iter().map(|r| r.max_mean).sum::<f64>() / n,
        gini: runs.iter().map(|r| r.gini).sum::<f64>() / n,
    }
}
