//! Scenario generation for the experiments.
//!
//! Every experiment builds its scenario through [`Workload`], so HVDB and
//! every baseline see byte-identical inputs (same node placement seed, same
//! membership, same traffic schedule).

use hvdb_core::{GroupEvent, GroupId, HvdbConfig, TrafficItem};
use hvdb_geo::Aabb;
use hvdb_sim::{
    Mobility, NodeId, RadioConfig, RandomWaypoint, SimConfig, SimDuration, SimRng, SimTime,
    Stationary,
};
use serde::{Deserialize, Serialize};

/// Mobility regimes used across experiments.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MobilityKind {
    /// No movement (membership/overhead experiments).
    Static,
    /// Random waypoint with the given (min, max) speed in m/s.
    Waypoint(f64, f64),
}

impl MobilityKind {
    /// Instantiates the mobility model.
    pub fn build(&self) -> Box<dyn Mobility> {
        match self {
            MobilityKind::Static => Box::new(Stationary),
            MobilityKind::Waypoint(lo, hi) => Box::new(RandomWaypoint::new(*lo, *hi, 10.0)),
        }
    }
}

/// A complete scenario description.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Deployment area side (square), metres.
    pub side: f64,
    /// Node count.
    pub nodes: usize,
    /// VC grid side (rows = cols).
    pub vc_side: u16,
    /// Hypercube dimension.
    pub dim: u8,
    /// Radio range (metres).
    pub range: f64,
    /// Independent per-receiver frame-loss probability (the `loss`
    /// robustness sweep's axis; 0 everywhere else).
    pub loss_prob: f64,
    /// Mobility regime.
    pub mobility: MobilityKind,
    /// Number of multicast groups.
    pub groups: usize,
    /// Members per group.
    pub members_per_group: usize,
    /// Data packets per group.
    pub packets_per_group: usize,
    /// Payload bytes per packet.
    pub payload: usize,
    /// Warm-up before traffic starts (backbone + membership convergence).
    pub warmup: SimDuration,
    /// Traffic window length.
    pub traffic_window: SimDuration,
    /// Cool-down after the last send.
    pub cooldown: SimDuration,
    /// Fraction of nodes with CH-class hardware.
    pub enhanced_fraction: f64,
    /// Scripted membership churn: this many join/leave events (drawn
    /// deterministically from the seed, alternating join-heavy) spread
    /// over the traffic window. 0 = a quiet control plane (the
    /// `overhead` scenario's baseline phase).
    pub churn_events: usize,
    /// Master seed.
    pub seed: u64,
    /// Fail-stop faults injected during the run: this many distinct nodes
    /// (drawn deterministically from the seed) go down at [`Workload::fail_at`].
    pub fail_count: usize,
    /// When the injected failures strike (defaults to mid-traffic-window
    /// when `fail_count > 0`).
    pub fail_at: Option<SimTime>,
}

impl Default for Workload {
    fn default() -> Self {
        Workload {
            side: 1600.0,
            nodes: 300,
            vc_side: 8,
            dim: 4,
            range: 450.0,
            loss_prob: 0.0,
            mobility: MobilityKind::Static,
            groups: 2,
            members_per_group: 10,
            packets_per_group: 10,
            payload: 512,
            warmup: SimDuration::from_secs(120),
            traffic_window: SimDuration::from_secs(40),
            cooldown: SimDuration::from_secs(40),
            enhanced_fraction: 0.8,
            churn_events: 0,
            seed: 1,
            fail_count: 0,
            fail_at: None,
        }
    }
}

/// The materialised scenario inputs shared by all protocols.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Simulator configuration.
    pub sim: SimConfig,
    /// HVDB configuration (derived system parameters).
    pub hvdb: HvdbConfig,
    /// Initial group membership.
    pub members: Vec<(NodeId, GroupId)>,
    /// Scripted traffic.
    pub traffic: Vec<TrafficItem>,
    /// Scripted membership changes (empty unless an experiment adds some).
    pub group_events: Vec<GroupEvent>,
    /// Fail-stop faults to schedule before the run.
    pub failures: Vec<(NodeId, SimTime)>,
    /// Simulation end time.
    pub until: SimTime,
    /// The mobility regime (each run builds its own model instance).
    pub mobility_kind: MobilityKind,
}

impl Workload {
    /// Materialises the scenario: deterministic membership and traffic from
    /// the seed.
    pub fn build(&self) -> Scenario {
        let area = Aabb::from_size(self.side, self.side);
        let sim = SimConfig {
            area,
            num_nodes: self.nodes,
            radio: RadioConfig {
                range: self.range,
                loss_prob: self.loss_prob,
                ..Default::default()
            },
            mobility_tick: match self.mobility {
                MobilityKind::Static => SimDuration::ZERO,
                _ => SimDuration::from_secs(1),
            },
            enhanced_fraction: self.enhanced_fraction,
            seed: self.seed,
            per_receiver_delivery: false,
        };
        let hvdb = HvdbConfig::new(area, self.vc_side, self.vc_side, self.dim);
        // Deterministic membership and traffic from a scenario-level RNG
        // (independent of the simulator's internal streams).
        let mut rng = SimRng::new(self.seed ^ 0x5EED_CAFE);
        let mut members = Vec::new();
        for g in 0..self.groups {
            let gid = GroupId(g as u32 + 1);
            let chosen = rng.sample_indices(self.nodes, self.members_per_group.min(self.nodes));
            for m in chosen {
                members.push((NodeId(m as u32), gid));
            }
        }
        let mut traffic = Vec::new();
        let window = self.traffic_window.0.max(1);
        for g in 0..self.groups {
            let gid = GroupId(g as u32 + 1);
            for _ in 0..self.packets_per_group {
                let src = NodeId(rng.index(self.nodes) as u32);
                let at = SimTime(self.warmup.0 + rng.range_u64(0, window));
                traffic.push(TrafficItem {
                    at,
                    src,
                    group: gid,
                    size: self.payload,
                });
            }
        }
        traffic.sort_by_key(|t| (t.at, t.src));
        // Scripted membership churn: join/leave events over the traffic
        // window from an independent stream. Two joins per leave keeps
        // groups populated for the whole run (delivery accounting reads
        // ground truth at send time, so churn and traffic compose).
        let mut group_events = Vec::new();
        if self.churn_events > 0 && self.groups > 0 {
            let mut crng = SimRng::new(self.seed ^ 0xC4_0412_CAFE);
            for i in 0..self.churn_events {
                let gid = GroupId(crng.index(self.groups) as u32 + 1);
                let node = NodeId(crng.index(self.nodes) as u32);
                group_events.push(GroupEvent {
                    at: SimTime(self.warmup.0 + crng.range_u64(0, window)),
                    node,
                    group: gid,
                    join: i % 3 != 2,
                });
            }
            group_events.sort_by_key(|e| (e.at, e.node, e.group.0));
        }
        let until = SimTime(self.warmup.0 + self.traffic_window.0 + self.cooldown.0);
        // Fault injection: distinct victims from an independent stream,
        // striking mid-traffic-window unless scripted otherwise, so
        // in-flight sessions must fail over rather than re-elect ahead of
        // time.
        let mut failures = Vec::new();
        if self.fail_count > 0 {
            let at = self
                .fail_at
                .unwrap_or(SimTime(self.warmup.0 + self.traffic_window.0 / 2));
            let mut frng = SimRng::new(self.seed ^ 0xFA11_FA11);
            for idx in frng.sample_indices(self.nodes, self.fail_count.min(self.nodes)) {
                failures.push((NodeId(idx as u32), at));
            }
            failures.sort_unstable_by_key(|(n, _)| *n);
        }
        Scenario {
            sim,
            hvdb,
            members,
            traffic,
            group_events,
            failures,
            until,
            mobility_kind: self.mobility,
        }
    }

    /// A shrunk copy for smoke testing: a handful of nodes, a ~1-second
    /// simulation, one seed's worth of everything. Numbers produced under
    /// smoke are meaningless (the backbone has no time to converge); the
    /// point is that the full pipeline — scenario construction, run,
    /// metrics, JSON — executes quickly.
    pub fn smoke(&self) -> Workload {
        Workload {
            nodes: self.nodes.min(40),
            side: self.side.min(800.0),
            groups: self.groups.min(2),
            members_per_group: self.members_per_group.min(3),
            packets_per_group: self.packets_per_group.min(2),
            churn_events: self.churn_events.min(3),
            warmup: SimDuration::from_millis(400),
            traffic_window: SimDuration::from_millis(300),
            cooldown: SimDuration::from_millis(300),
            fail_count: self.fail_count.min(2),
            // An explicit fail time from the full-size scenario would land
            // beyond the shrunk horizon and never fire; fall back to the
            // derived mid-window default so smoke still exercises faults.
            fail_at: None,
            ..self.clone()
        }
    }
}

/// One protocol run's headline measurements.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunMetrics {
    /// Delivery ratio over expected receivers.
    pub delivery: f64,
    /// Mean end-to-end latency (seconds), 0 when nothing delivered.
    pub latency: f64,
    /// Total control messages (everything that is not payload-carrying).
    pub control_msgs: u64,
    /// Total control bytes.
    pub control_bytes: u64,
    /// Total data-plane messages.
    pub data_msgs: u64,
    /// Total data-plane bytes.
    pub data_bytes: u64,
    /// Jain fairness of per-node transmitted bytes.
    pub jain: f64,
    /// Peak-to-mean per-node transmitted bytes.
    pub max_mean: f64,
    /// Gini coefficient of per-node transmitted bytes.
    pub gini: f64,
}

impl RunMetrics {
    /// The metrics as named pairs, in stable order, for report rows.
    pub fn metric_pairs(&self) -> Vec<(String, f64)> {
        vec![
            ("delivery".into(), self.delivery),
            ("latency_ms".into(), self.latency * 1e3),
            ("control_msgs".into(), self.control_msgs as f64),
            ("control_bytes".into(), self.control_bytes as f64),
            ("data_msgs".into(), self.data_msgs as f64),
            ("data_bytes".into(), self.data_bytes as f64),
            ("jain".into(), self.jain),
            ("max_mean".into(), self.max_mean),
            ("gini".into(), self.gini),
        ]
    }
}

/// Message classes originated by the soft-state refresh timer (periodic
/// re-advertisement rather than content change), *including* their flood
/// relays — the traffic the adaptive controller suppresses in quiet
/// phases, measured separately so the `overhead` scenario can gate it.
pub fn is_refresh_class(class: &str) -> bool {
    matches!(class, "ch-refresh" | "mnt-refresh" | "ht-refresh")
}

/// Classifies message classes into control vs data planes (shared across
/// protocols so comparisons are apples-to-apples).
pub fn is_data_class(class: &str) -> bool {
    matches!(
        class,
        "mesh-data"
            | "hc-data"
            | "local-deliver"
            | "data-to-ch"
            | "flood-data"
            | "tree-data-up"
            | "tree-data-down"
            | "dsm-data"
            | "spbm-data"
            | "spbm-deliver"
    )
}

/// Extracts [`RunMetrics`] from a finished simulation.
pub fn metrics_of(stats: &hvdb_sim::Stats) -> RunMetrics {
    RunMetrics {
        delivery: stats.delivery_ratio(),
        latency: stats.mean_latency().unwrap_or(0.0),
        control_msgs: stats.msgs_where(|c| !is_data_class(c)),
        control_bytes: stats.bytes_where(|c| !is_data_class(c)),
        data_msgs: stats.msgs_where(is_data_class),
        data_bytes: stats.bytes_where(is_data_class),
        jain: hvdb_sim::jain_fairness(&stats.node_tx_bytes),
        max_mean: hvdb_sim::max_mean_ratio(&stats.node_tx_bytes),
        gini: hvdb_sim::gini(&stats.node_tx_bytes),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_deterministic() {
        let w = Workload::default();
        let a = w.build();
        let b = w.build();
        assert_eq!(a.members, b.members);
        assert_eq!(a.traffic, b.traffic);
        assert_eq!(a.until, b.until);
    }

    #[test]
    fn different_seeds_differ() {
        let a = Workload::default().build();
        let b = Workload {
            seed: 2,
            ..Default::default()
        }
        .build();
        assert_ne!(a.traffic, b.traffic);
    }

    #[test]
    fn member_counts_match_request() {
        let w = Workload {
            groups: 3,
            members_per_group: 7,
            ..Default::default()
        };
        let s = w.build();
        assert_eq!(s.members.len(), 21);
        for g in 1..=3u32 {
            assert_eq!(s.members.iter().filter(|(_, gid)| gid.0 == g).count(), 7);
        }
    }

    #[test]
    fn traffic_within_window() {
        let w = Workload::default();
        let s = w.build();
        assert_eq!(s.traffic.len(), w.groups * w.packets_per_group);
        for t in &s.traffic {
            assert!(t.at >= SimTime(w.warmup.0));
            assert!(t.at < SimTime(w.warmup.0 + w.traffic_window.0));
        }
    }

    #[test]
    fn data_class_partition() {
        assert!(is_data_class("mesh-data"));
        assert!(is_data_class("flood-data"));
        assert!(!is_data_class("beacon"));
        assert!(!is_data_class("mnt-share"));
        assert!(!is_data_class("spbm-l0"));
        assert!(!is_data_class("dsm-location"));
        // Refresh-plane classes are control traffic, and a strict subset
        // of it.
        for c in ["ch-refresh", "mnt-refresh", "ht-refresh"] {
            assert!(is_refresh_class(c));
            assert!(!is_data_class(c));
        }
        assert!(!is_refresh_class("mnt-share"));
        assert!(!is_refresh_class("stamp-hint"));
    }

    #[test]
    fn churn_events_are_deterministic_and_windowed() {
        let w = Workload {
            churn_events: 30,
            ..Workload::default()
        };
        let a = w.build();
        let b = w.build();
        assert_eq!(a.group_events, b.group_events);
        assert_eq!(a.group_events.len(), 30);
        let joins = a.group_events.iter().filter(|e| e.join).count();
        assert_eq!(joins, 20, "two joins per leave keep groups populated");
        for e in &a.group_events {
            assert!(e.at >= SimTime(w.warmup.0));
            assert!(e.at < SimTime(w.warmup.0 + w.traffic_window.0));
            assert!(e.group.0 >= 1 && e.group.0 <= w.groups as u32);
        }
        // Quiet default: no churn unless asked for.
        assert!(Workload::default().build().group_events.is_empty());
    }
}
