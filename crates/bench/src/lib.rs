//! # hvdb-bench — experiment harness for the HVDB reproduction
//!
//! Regenerates every figure of the paper and quantifies every claim of its
//! conclusions (see `DESIGN.md` §4 for the experiment index and
//! `EXPERIMENTS.md` for recorded results). [`workload`] builds scenarios
//! shared byte-for-byte across protocols; [`runner`] executes them under
//! HVDB and the four baselines, parallelising seed sweeps with rayon while
//! each individual simulation stays deterministic.

#![warn(missing_docs)]

pub mod runner;
pub mod workload;

pub use runner::{average, print_header, print_row, run_one, run_seeds, Proto};
pub use workload::{is_data_class, metrics_of, MobilityKind, RunMetrics, Scenario, Workload};
