//! # hvdb-bench — experiment harness for the HVDB reproduction
//!
//! Regenerates every figure of the paper and quantifies every claim of
//! its conclusions through one CLI (`hvdb-bench`, see `src/bin/main.rs`).
//!
//! * [`workload`] builds scenario inputs shared byte-for-byte across
//!   protocols;
//! * [`runner`] executes one `(scenario, protocol)` run and averages seed
//!   sweeps, parallelising across runs with rayon while each individual
//!   simulation stays deterministic;
//! * [`scenario`] is the registry: every experiment (c1–c4, f1–f6, a1,
//!   seed) as a named, declarative entry with a smoke mode;
//! * [`report`] is the uniform row model and the `BENCH_<scenario>.json`
//!   serialization the perf trajectory is built from;
//! * [`validate`] is the strict report validator and the CI regression
//!   gates (`hvdb-bench validate`, and `run`'s post-write check).

#![warn(missing_docs)]

pub mod report;
pub mod runner;
pub mod scenario;
pub mod validate;
pub mod workload;

pub use report::{Json, Row, ScenarioReport};
pub use runner::{
    average, chrome_trace_json, profile_json, run_hvdb_tweaked, run_one, run_one_instrumented,
    run_par_flood, run_par_hvdb, run_par_hvdb_timeline, run_par_hvdb_traced, run_seeds,
    sample_par_hvdb, sample_serial, timeline_json, traffic_profile_of, Proto, RunDetail,
    TimelineSample, TrafficProfile,
};
pub use scenario::{registry, run_scenario, CustomOut, RunOpts, ScenarioDef};
pub use validate::{
    check_byzantine_gate, check_loss_floor, check_loss_high_band, check_overhead_gate,
    check_partition_gate, check_partition_timeline, check_perf_gate, check_perf_threads_gate,
    check_scale_gate, check_traffic_gate, check_trajectory, gated_metrics, parse_strict,
    validate_report_str, BYZANTINE_DAMAGE_PER_NODE, LOSS_DELIVERY_FLOOR, LOSS_GATE_POINT,
    LOSS_HIGH_FLOOR, LOSS_HIGH_POINTS, OVERHEAD_CEILING_FRAMES_PER_S, OVERHEAD_GATED_METRICS,
    OVERHEAD_QUIET_IMPROVEMENT, OVERHEAD_QUIET_POINT, PARTITION_REACHABLE_DELIVERY_FLOOR,
    PARTITION_REMERGE_BUDGET_SECS, PERF_SPEEDUP_FLOOR, PERF_THREADS_SPEEDUP_FLOOR,
    SCALE_DELIVERY_FLOOR, SCALE_GATE_MIN_NODES, TRAFFIC_BASELINE_PROTOS,
    TRAFFIC_KNEE_DELIVERY_FLOOR, TRAFFIC_KNEE_P99_CEILING_MS, TRAFFIC_P99_BAND_MS,
    TRAFFIC_P99_REFERENCE_POINT, TRAJECTORY_DELIVERY_TOLERANCE, TRAJECTORY_OVERHEAD_TOLERANCE,
};
pub use workload::{
    is_data_class, is_refresh_class, metrics_of, MobilityKind, RunMetrics, Scenario, Workload,
};
