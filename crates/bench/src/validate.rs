//! Strict validation of `BENCH_<scenario>.json` reports, plus the
//! regression gates CI enforces on them.
//!
//! The report writer is hand-rolled (offline workspace), so nothing may
//! trust it blindly: [`parse_strict`] is a strict recursive-descent JSON
//! parser (no trailing garbage, no bad escapes, no bare control chars),
//! and [`validate_report_str`] layers the exact report schema on top —
//! the six top-level fields with their types, every row fully typed,
//! finite metrics only, no unknown keys. The CLI (`hvdb-bench validate`,
//! and `run`'s post-write check) and the test suite share this code, so
//! a malformed report can neither land in CI artifacts nor be committed
//! unnoticed.
//!
//! [`check_loss_floor`] is the robustness regression gate: the committed
//! delivery floor for the `loss` scenario's worst seed at the
//! [`LOSS_GATE_POINT`] operating point.

use crate::report::Json;

/// The committed robustness floor: worst-seed mean delivery of the `loss`
/// scenario at [`LOSS_GATE_POINT`] must not drop below this (PR 1's
/// baseline was ~0.65; the soft-state control plane lifts it above 0.90,
/// and CI fails any change that regresses it).
pub const LOSS_DELIVERY_FLOOR: f64 = 0.90;

/// The `loss` sweep point the floor applies to (15% frame loss).
pub const LOSS_GATE_POINT: &str = "loss=0.15";

/// The committed floor band for the *high*-loss regime: worst-seed
/// delivery at every [`LOSS_HIGH_POINTS`] point must stay at or above
/// this (PR 3 measured 0.969 at 25% and 0.953 at 30%; the band keeps
/// the whole ≥25% regime from silently eroding while the 15% point
/// stays green).
pub const LOSS_HIGH_FLOOR: f64 = 0.93;

/// The `loss` sweep points gated by [`LOSS_HIGH_FLOOR`].
pub const LOSS_HIGH_POINTS: [&str; 2] = ["loss=0.25", "loss=0.3"];

/// The `perf` scenario's committed speedup floor: shared-frame delivery
/// must process events at least this many times faster than the legacy
/// per-receiver-clone arm at the largest node count both arms ran (the
/// committed full run measures ~3x at 600+ nodes; the gate's margin
/// absorbs shared-runner wall-clock noise). CI's `perf-smoke` job passes
/// a lower floor for its shrunk workload via `--perf-floor`.
pub const PERF_SPEEDUP_FLOOR: f64 = 2.0;

/// The `perf` scenario's parallel-engine speedup floor: the
/// `engine-threads` arm's multi-thread row must process events at least
/// this many times faster than its single-thread row — *when the machine
/// can actually run the threads* (see [`check_perf_threads_gate`]; on a
/// box with fewer than 4 hardware threads only the determinism half of
/// the gate is enforced, because a timesliced "speedup" measures nothing).
pub const PERF_THREADS_SPEEDUP_FLOOR: f64 = 2.0;

/// The `overhead` scenario's gated operating point: the quiet phase (no
/// membership churn), where the adaptive refresh controller must earn
/// its keep.
pub const OVERHEAD_QUIET_POINT: &str = "churn=0";

/// Quiet-phase improvement floor: the fixed-rate baseline's
/// refresh-plane frames/s divided by the adaptive controller's must be
/// at least this (the committed run measures ~3.2x; the gate keeps the
/// headline ≥2x claim honest).
pub const OVERHEAD_QUIET_IMPROVEMENT: f64 = 2.0;

/// Absolute ceiling on the adaptive controller's quiet-phase *total*
/// control frames/s on the `overhead` workload (committed run: ~719;
/// the PR 2 fixed rate burned ~1132). Fails any change that quietly
/// re-inflates the control plane even if the relative gate still passes.
pub const OVERHEAD_CEILING_FRAMES_PER_S: f64 = 900.0;

/// The `traffic` scenario's knee rule, delivery half: an offered-load
/// point is *sustained* only while mean delivery stays at or above this.
pub const TRAFFIC_KNEE_DELIVERY_FLOOR: f64 = 0.90;

/// The `traffic` knee rule, latency half: an offered-load point whose
/// p99 latency exceeds half a second is past the knee even if delivery
/// has not collapsed yet (queues saturated; packets ride the cooldown
/// out).
pub const TRAFFIC_KNEE_P99_CEILING_MS: f64 = 500.0;

/// Baselines HVDB must out-sustain in the `traffic` sweep.
pub const TRAFFIC_BASELINE_PROTOS: [&str; 2] = ["flooding", "shared-tree"];

/// The pre-knee operating point whose HVDB p99 latency is band-gated.
pub const TRAFFIC_P99_REFERENCE_POINT: &str = "pps=160";

/// Committed HVDB p99 band (ms) at [`TRAFFIC_P99_REFERENCE_POINT`]: the
/// run is deterministic, so drift outside this band means the data path
/// or the radio model changed. The committed run measures ~29 ms; the
/// band gives 2x headroom either way for deliberate retuning.
pub const TRAFFIC_P99_BAND_MS: (f64, f64) = (10.0, 60.0);

/// Bench-trajectory tolerance: a candidate row's `delivery` may fall at
/// most this fraction below the committed baseline's.
pub const TRAJECTORY_DELIVERY_TOLERANCE: f64 = 0.10;

/// Bench-trajectory tolerance: a candidate row's overhead metrics
/// ([`OVERHEAD_GATED_METRICS`]) may grow at most this fraction over the
/// committed baseline's.
pub const TRAJECTORY_OVERHEAD_TOLERANCE: f64 = 0.15;

/// The per-row metrics the trajectory comparison treats as overhead
/// (lower is better, growth is gated). `memory_per_node_bytes` is the
/// `scale` scenario's footprint column: deterministic content-byte
/// estimates, so a growth past the band is a real per-node state
/// regression, not allocator noise.
pub const OVERHEAD_GATED_METRICS: [&str; 4] = [
    "control_frames_per_s",
    "control_bytes_per_node",
    "refresh_frames_per_s",
    "memory_per_node_bytes",
];

/// Minimum delivery ratio the `scale` scenario's largest parallel-engine
/// point must sustain ([`check_scale_gate`]).
pub const SCALE_DELIVERY_FLOOR: f64 = 0.99;

/// The `scale` delivery gate applies from this node count up: the 100k
/// scale campaign's first enforced milestone is "delivery holds at 20k".
pub const SCALE_GATE_MIN_NODES: u64 = 20_000;

/// The `partition` scenario's steady-state delivery floor *among
/// reachable nodes*: once each island has had the settle interval to
/// re-grow its half of the backbone, worst-seed delivery to receivers in
/// the sender's own island must stay at or above this. Cross-island
/// traffic is physically impossible during the split and is excluded —
/// the gate asserts the protocol keeps serving whatever the radio still
/// permits, per the paper's partition-tolerance claim. (The cut
/// transient itself is reported as `delivery_reachable` but not gated:
/// re-election takes tens of seconds by design.)
pub const PARTITION_REACHABLE_DELIVERY_FLOOR: f64 = 0.95;

/// The `partition` scenario's re-merge budget (seconds): after the heal,
/// the worst seed's cluster-head census must fall back to its
/// pre-partition level within this long (the committed full run measures
/// re-merge in ~5 s; the budget gives soft-state expiry headroom).
pub const PARTITION_REMERGE_BUDGET_SECS: f64 = 15.0;

/// The `byzantine` scenario's damage ceiling: mean delivery lost per
/// misbehaving node, `(delivery(k=0) - delivery(k)) / k`, must stay at
/// or below this at every injected count k > 0. Bounds the blast radius
/// of one adversarial node on the multicast plane.
pub const BYZANTINE_DAMAGE_PER_NODE: f64 = 0.05;

/// Parses `input` as one strict JSON document (the whole string, no
/// trailing garbage) into a [`Json`] value.
pub fn parse_strict(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p
        .value()
        .map_err(|e| format!("invalid JSON at byte {}: {e}", p.pos))?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!(
            "trailing garbage after JSON document at byte {}",
            p.pos
        ));
    }
    Ok(v)
}

/// Validates `input` as a complete scenario report: strict JSON plus the
/// exact report schema. Returns the parsed document for further checks.
pub fn validate_report_str(input: &str) -> Result<Json, String> {
    let doc = parse_strict(input)?;
    validate_report(&doc)?;
    Ok(doc)
}

fn obj_fields(v: &Json) -> Result<&[(String, Json)], String> {
    match v {
        Json::Obj(fields) => Ok(fields),
        other => Err(format!("expected object, got {other:?}")),
    }
}

fn field<'a>(fields: &'a [(String, Json)], key: &str) -> Result<&'a Json, String> {
    fields
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| format!("missing field {key:?}"))
}

fn as_str<'a>(v: &'a Json, what: &str) -> Result<&'a str, String> {
    match v {
        Json::Str(s) => Ok(s),
        other => Err(format!("{what}: expected string, got {other:?}")),
    }
}

/// Schema check of a parsed report document. Strict: every field typed,
/// no unknown top-level or row keys, rows non-empty, metrics finite.
pub fn validate_report(doc: &Json) -> Result<(), String> {
    let fields = obj_fields(doc)?;
    // "workload", "timeline" and "profile" are the optional keys:
    // scenarios with a scripted fault plan serialize the first, the
    // observability scenarios add the latter two; everything else omits
    // them, keeping historical reports byte-stable.
    const TOP: [&str; 9] = [
        "scenario", "figure", "summary", "smoke", "threads", "workload", "timeline", "profile",
        "rows",
    ];
    for (k, _) in fields {
        if !TOP.contains(&k.as_str()) {
            return Err(format!("unknown top-level field {k:?}"));
        }
    }
    if let Some((_, v)) = fields.iter().find(|(k, _)| k == "workload") {
        if !matches!(v, Json::Obj(_)) {
            return Err(format!("workload: expected object, got {v:?}"));
        }
    }
    if let Some((_, v)) = fields.iter().find(|(k, _)| k == "timeline") {
        validate_timeline(v).map_err(|e| format!("timeline: {e}"))?;
    }
    if let Some((_, v)) = fields.iter().find(|(k, _)| k == "profile") {
        validate_profile(v).map_err(|e| format!("profile: {e}"))?;
    }
    let scenario = as_str(field(fields, "scenario")?, "scenario")?;
    if scenario.is_empty() {
        return Err("empty scenario name".into());
    }
    as_str(field(fields, "figure")?, "figure")?;
    as_str(field(fields, "summary")?, "summary")?;
    match field(fields, "smoke")? {
        Json::Bool(_) => {}
        other => return Err(format!("smoke: expected bool, got {other:?}")),
    }
    match field(fields, "threads")? {
        Json::Num(n) if *n >= 1.0 && n.fract() == 0.0 => {}
        other => {
            return Err(format!(
                "threads: expected a positive integer, got {other:?}"
            ))
        }
    }
    let rows = match field(fields, "rows")? {
        Json::Arr(rows) => rows,
        other => return Err(format!("rows: expected array, got {other:?}")),
    };
    if rows.is_empty() {
        return Err(format!("scenario {scenario:?} has no rows"));
    }
    for (i, row) in rows.iter().enumerate() {
        validate_row(row).map_err(|e| format!("row {i}: {e}"))?;
    }
    Ok(())
}

fn validate_row(row: &Json) -> Result<(), String> {
    let fields = obj_fields(row)?;
    const KEYS: [&str; 4] = ["sweep", "label", "proto", "metrics"];
    for (k, _) in fields {
        if !KEYS.contains(&k.as_str()) {
            return Err(format!("unknown row field {k:?}"));
        }
    }
    for key in ["sweep", "label", "proto"] {
        let s = as_str(field(fields, key)?, key)?;
        if s.is_empty() {
            return Err(format!("empty {key}"));
        }
    }
    let metrics = match field(fields, "metrics")? {
        Json::Obj(m) => m,
        other => return Err(format!("metrics: expected object, got {other:?}")),
    };
    if metrics.is_empty() {
        return Err("row has no metrics".into());
    }
    for (name, v) in metrics {
        match v {
            Json::Num(n) if n.is_finite() => {}
            other => {
                return Err(format!(
                    "metric {name:?}: expected finite number, got {other:?}"
                ))
            }
        }
    }
    Ok(())
}

/// Structural check of a report's optional `timeline` block: a positive
/// sampling cadence and a non-empty sample series with strictly
/// increasing `t_secs`. Annotation keys between `interval_secs` and
/// `samples` are scenario-specific and pass through unchecked (their
/// values must still be valid JSON by construction).
fn validate_timeline(v: &Json) -> Result<(), String> {
    let fields = obj_fields(v)?;
    match field(fields, "interval_secs")? {
        Json::Num(n) if *n > 0.0 && n.is_finite() => {}
        other => {
            return Err(format!(
                "interval_secs: expected positive number, got {other:?}"
            ))
        }
    }
    let samples = match field(fields, "samples")? {
        Json::Arr(s) => s,
        other => return Err(format!("samples: expected array, got {other:?}")),
    };
    if samples.is_empty() {
        return Err("empty sample series".into());
    }
    let mut prev = f64::NEG_INFINITY;
    for (i, s) in samples.iter().enumerate() {
        let sf = obj_fields(s).map_err(|e| format!("sample {i}: {e}"))?;
        let t = match field(sf, "t_secs").map_err(|e| format!("sample {i}: {e}"))? {
            Json::Num(t) if t.is_finite() => *t,
            other => {
                return Err(format!(
                    "sample {i}: t_secs: expected number, got {other:?}"
                ))
            }
        };
        if t <= prev {
            return Err(format!(
                "sample {i}: t_secs {t} not increasing (prev {prev})"
            ));
        }
        prev = t;
        for key in [
            "heads",
            "delivery",
            "control_frames",
            "memory_per_node_bytes",
        ] {
            match field(sf, key).map_err(|e| format!("sample {i}: {e}"))? {
                Json::Num(n) if n.is_finite() => {}
                other => {
                    return Err(format!(
                        "sample {i}: {key}: expected finite number, got {other:?}"
                    ))
                }
            }
        }
    }
    Ok(())
}

/// Structural check of a report's optional `profile` block. Values are
/// wall-clock derived and machine-dependent, so only shape and
/// non-negativity are checked — never magnitudes.
fn validate_profile(v: &Json) -> Result<(), String> {
    let fields = obj_fields(v)?;
    for key in ["windows", "drain_secs", "commit_secs", "barrier_secs"] {
        match field(fields, key)? {
            Json::Num(n) if *n >= 0.0 && n.is_finite() => {}
            other => {
                return Err(format!(
                    "{key}: expected non-negative number, got {other:?}"
                ))
            }
        }
    }
    match field(fields, "lane_busy_secs")? {
        Json::Arr(lanes) => {
            for lane in lanes {
                match lane {
                    Json::Num(n) if *n >= 0.0 && n.is_finite() => {}
                    other => {
                        return Err(format!(
                            "lane_busy_secs: expected non-negative number, got {other:?}"
                        ))
                    }
                }
            }
        }
        other => return Err(format!("lane_busy_secs: expected array, got {other:?}")),
    }
    Ok(())
}

/// Cross-checks a `partition` report's `timeline` block against its
/// probe-loop measurement: the re-merge instant *derived from the sample
/// series* (first sample after `heal_at_secs` whose head census is at or
/// below `heads_target`) must equal the `remerge_secs_probe` annotation
/// the run measured directly. A report without a timeline passes — the
/// block is optional and legacy reports predate it.
///
/// This is the point of the timeline plane: a transient claim like
/// "re-merge in 5 s" stops being a number the harness asserts and starts
/// being a curve anyone can re-derive from the committed report.
pub fn check_partition_timeline(doc: &Json) -> Result<Option<f64>, String> {
    let fields = obj_fields(doc)?;
    let Some((_, tl)) = fields.iter().find(|(k, _)| k == "timeline") else {
        return Ok(None);
    };
    let tf = obj_fields(tl)?;
    let num = |key: &str| -> Result<f64, String> {
        match field(tf, key)? {
            Json::Num(n) => Ok(*n),
            other => Err(format!("timeline {key}: expected number, got {other:?}")),
        }
    };
    let heal_at = num("heal_at_secs")?;
    let target = num("heads_target")?;
    let measured = num("remerge_secs_probe")?;
    let Json::Arr(samples) = field(tf, "samples")? else {
        return Err("timeline samples: expected array".into());
    };
    let mut derived = None;
    for s in samples {
        let sf = obj_fields(s)?;
        let (Ok(Json::Num(t)), Ok(Json::Num(heads))) = (field(sf, "t_secs"), field(sf, "heads"))
        else {
            return Err("timeline sample missing t_secs/heads".into());
        };
        if *t > heal_at && *heads <= target {
            derived = Some(t - heal_at);
            break;
        }
    }
    let Some(derived) = derived else {
        return Err(format!(
            "timeline never returns to heads_target {target} after heal_at {heal_at}s \
             (probe measured {measured}s)"
        ));
    };
    // The probe loop and the sampler observe the same stepped run at the
    // same cadence, so the two numbers must agree exactly (both are
    // probe-multiples; compare with a float hair of slack).
    if (derived - measured).abs() > 1e-9 {
        return Err(format!(
            "re-merge derived from timeline ({derived}s) disagrees with probe measurement \
             ({measured}s)"
        ));
    }
    Ok(Some(derived))
}

/// The metrics CI gates read for a given scenario, for tooling
/// (`hvdb-bench list --json`) and the job matrix. Scenarios not listed
/// here are schema-validated only.
pub fn gated_metrics(scenario: &str) -> &'static [&'static str] {
    match scenario {
        "loss" => &["delivery_worst"],
        "overhead" => &["refresh_frames_per_s", "control_frames_per_s"],
        "perf" => &["events_per_s", "events_processed"],
        "traffic" => &["delivery", "p99_ms"],
        "scale" => &["delivery", "events_processed"],
        "partition" => &[
            "delivery_reachable_steady_worst",
            "remerge_secs_worst",
            "drops_partitioned",
        ],
        "byzantine" => &["damage_per_node"],
        _ => &[],
    }
}

/// Reads a metric from the row matching `(sweep, label, proto)`.
pub fn metric_of(doc: &Json, sweep: &str, label: &str, proto: &str, metric: &str) -> Option<f64> {
    let fields = obj_fields(doc).ok()?;
    let Json::Arr(rows) = field(fields, "rows").ok()? else {
        return None;
    };
    for row in rows {
        let rf = obj_fields(row).ok()?;
        let matches =
            |key: &str, want: &str| matches!(field(rf, key), Ok(Json::Str(s)) if s == want);
        if matches("sweep", sweep) && matches("label", label) && matches("proto", proto) {
            if let Ok(Json::Obj(metrics)) = field(rf, "metrics") {
                if let Some((_, Json::Num(n))) = metrics.iter().find(|(k, _)| k == metric) {
                    return Some(*n);
                }
            }
        }
    }
    None
}

/// The CI regression gate over a validated `loss` report: worst-seed
/// delivery at [`LOSS_GATE_POINT`] must be at least `floor`. Refuses
/// smoke reports (their numbers are meaningless) and missing gate rows.
pub fn check_loss_floor(doc: &Json, floor: f64) -> Result<f64, String> {
    let fields = obj_fields(doc)?;
    if matches!(field(fields, "smoke")?, Json::Bool(true)) {
        return Err(
            "loss gate needs a full run, not --smoke (smoke numbers are meaningless)".into(),
        );
    }
    let worst = metric_of(doc, "frame-loss", LOSS_GATE_POINT, "hvdb", "delivery_worst")
        .ok_or_else(|| {
            format!("no hvdb frame-loss row at {LOSS_GATE_POINT} with a delivery_worst metric")
        })?;
    if worst < floor {
        return Err(format!(
            "worst-seed delivery {worst:.3} at {LOSS_GATE_POINT} is below the committed floor {floor:.2}"
        ));
    }
    Ok(worst)
}

/// The high-loss regression band over a validated `loss` report: every
/// [`LOSS_HIGH_POINTS`] row's worst-seed delivery must be at least
/// [`LOSS_HIGH_FLOOR`]. Missing rows fail loudly (a gate that cannot
/// find its point must not wave the report through). Refuses smoke
/// reports. Returns the checked `(point, worst)` pairs.
pub fn check_loss_high_band(doc: &Json) -> Result<Vec<(String, f64)>, String> {
    let fields = obj_fields(doc)?;
    if matches!(field(fields, "smoke")?, Json::Bool(true)) {
        return Err(
            "loss gate needs a full run, not --smoke (smoke numbers are meaningless)".into(),
        );
    }
    let mut checked = Vec::new();
    for point in LOSS_HIGH_POINTS {
        let worst =
            metric_of(doc, "frame-loss", point, "hvdb", "delivery_worst").ok_or_else(|| {
                format!("no hvdb frame-loss row at {point} with a delivery_worst metric")
            })?;
        if worst < LOSS_HIGH_FLOOR {
            return Err(format!(
                "worst-seed delivery {worst:.3} at {point} is below the committed \
                 high-loss floor {LOSS_HIGH_FLOOR:.2}"
            ));
        }
        checked.push((point.to_string(), worst));
    }
    Ok(checked)
}

/// The `perf` scenario's throughput gate: at the largest node count both
/// delivery arms ran, shared-frame delivery must be at least `floor`
/// times faster (events/s) than the per-receiver-clone arm — and both
/// arms must have processed **exactly** the same number of events, which
/// is what makes the ratio a pure wall-clock speedup (a mismatch means
/// the legacy emulation diverged from the shared path and the whole
/// comparison is void). Smoke reports are allowed: `perf --smoke` runs a
/// shrunk-but-real workload (tens of simulated seconds), unlike the
/// millisecond pipelines other scenarios smoke with — callers pass a
/// lower `floor` for it. Returns `(gated label, measured speedup)`.
pub fn check_perf_gate(doc: &Json, floor: f64) -> Result<(String, f64), String> {
    let rows = report_rows(doc)?;
    let nodes_of =
        |label: &str| -> Option<u64> { label.strip_prefix("nodes=").and_then(|n| n.parse().ok()) };
    let find = |label: &str, proto: &str, metric: &str| -> Option<f64> {
        rows.iter()
            .find(|(s, l, p, _)| s == "delivery-mode" && l == label && p == proto)
            .and_then(|(.., m)| m.iter().find(|(k, _)| k == metric).map(|(_, v)| *v))
    };
    let gate_label = rows
        .iter()
        .filter(|(s, _, p, _)| s == "delivery-mode" && p == "hvdb-cloned")
        .filter_map(|(_, l, ..)| nodes_of(l).map(|n| (n, l.clone())))
        .filter(|(_, l)| find(l, "hvdb-shared", "events_per_s").is_some())
        .max_by_key(|(n, _)| *n)
        .map(|(_, l)| l)
        .ok_or("no delivery-mode row present for both hvdb-shared and hvdb-cloned")?;
    let read = |proto: &str, metric: &str| -> Result<f64, String> {
        find(&gate_label, proto, metric)
            .ok_or_else(|| format!("no {proto} row at {gate_label} with a {metric} metric"))
    };
    let shared_events = read("hvdb-shared", "events_processed")?;
    let cloned_events = read("hvdb-cloned", "events_processed")?;
    if shared_events != cloned_events {
        return Err(format!(
            "delivery arms diverged at {gate_label}: shared processed {shared_events:.0} \\
             events, cloned {cloned_events:.0} — not a byte-identical workload"
        ));
    }
    let shared = read("hvdb-shared", "events_per_s")?;
    let cloned = read("hvdb-cloned", "events_per_s")?;
    if cloned <= 0.0 {
        return Err("cloned-arm events_per_s is zero — measurement broken".into());
    }
    let speedup = shared / cloned;
    if speedup < floor {
        return Err(format!(
            "shared-frame delivery speedup {speedup:.2}x at {gate_label} is below the \
             {floor:.1}x floor (shared {shared:.0} vs cloned {cloned:.0} events/s)"
        ));
    }
    Ok((gate_label, speedup))
}

/// The `perf` scenario's parallel-engine gate, over the `engine-threads`
/// sweep (the `par-flood` protocol run at 1 and N worker threads on the
/// same workload).
///
/// Two halves:
///
/// * **Determinism** — always enforced: every `engine-threads` row must
///   report **exactly** the same `events_processed`. Threads are allowed
///   to change wall-clock only; a diverging event count means the
///   parallel engine's commit order leaked into results.
/// * **Speedup** — enforced only when it can mean something: the
///   multi-thread row must show `events_per_s` at least `floor` times the
///   single-thread row's, *if* that row ran with >= 4 threads on a
///   machine reporting >= 4 hardware threads (the row's
///   `hardware_threads` metric). On smaller machines the threads
///   timeslice one core and the ratio measures scheduler noise, so the
///   gate records the measurement without enforcing the floor.
///
/// Returns `(multi-thread label, speedup, enforced)`. Missing rows or
/// metrics fail loudly — a gate that cannot find its points must not wave
/// the report through.
pub fn check_perf_threads_gate(doc: &Json, floor: f64) -> Result<(String, f64, bool), String> {
    let rows = report_rows(doc)?;
    let mut points: Vec<(u64, f64, f64, f64)> = Vec::new(); // (threads, events/s, events, hw)
    for (sweep, label, proto, metrics) in &rows {
        if sweep != "engine-threads" || proto != "par-flood" {
            continue;
        }
        let threads: u64 = label
            .strip_prefix("threads=")
            .and_then(|n| n.parse().ok())
            .ok_or_else(|| format!("engine-threads row has unparseable label {label:?}"))?;
        let get = |name: &str| -> Result<f64, String> {
            metrics
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| *v)
                .ok_or_else(|| format!("engine-threads row {label} has no {name} metric"))
        };
        points.push((
            threads,
            get("events_per_s")?,
            get("events_processed")?,
            get("hardware_threads")?,
        ));
    }
    if points.len() < 2 {
        return Err(format!(
            "need engine-threads par-flood rows at >= 2 thread counts, found {}",
            points.len()
        ));
    }
    points.sort_by_key(|p| p.0);
    let &(single_threads, single_eps, single_events, _) = points.first().expect("len checked");
    let &(threads, multi_eps, _, hw) = points.last().expect("len checked");
    let multi_label = format!("threads={threads}");
    if single_threads != 1 {
        return Err("engine-threads sweep has no threads=1 baseline row".into());
    }
    for &(t, _, events, _) in &points {
        if events != single_events {
            return Err(format!(
                "parallel engine diverged: threads={t} processed {events:.0} events, \
                 threads=1 processed {single_events:.0} — determinism contract broken"
            ));
        }
    }
    if single_eps <= 0.0 {
        return Err("single-thread events_per_s is zero — measurement broken".into());
    }
    let speedup = multi_eps / single_eps;
    let enforced = threads >= 4 && hw >= 4.0;
    if enforced && speedup < floor {
        return Err(format!(
            "parallel-engine speedup {speedup:.2}x at {multi_label} is below the {floor:.1}x \
             floor (multi {multi_eps:.0} vs single {single_eps:.0} events/s, \
             {hw:.0} hardware threads)"
        ));
    }
    Ok((multi_label, speedup, enforced))
}

/// The CI gate over a validated `scale` report, in two parts:
///
/// * **Determinism** (applies to smoke and full runs): the
///   `engine-threads` sweep's `hvdb-par` rows — HVDB itself on the
///   sharded parallel engine — must exist at a `threads=1` baseline plus
///   at least one other thread count, with *exactly* equal
///   `events_processed` everywhere. This is the thread-invariance
///   contract enforced on the real protocol, not just the flooding
///   benchmark.
/// * **Scale campaign** (full runs only): the largest `network-size`
///   point at or above [`SCALE_GATE_MIN_NODES`] nodes must deliver at
///   least [`SCALE_DELIVERY_FLOOR`]; a full report with no such point
///   fails — the campaign row cannot silently drop out of the sweep.
///
/// Returns one human-readable note per passed part.
pub fn check_scale_gate(doc: &Json) -> Result<Vec<String>, String> {
    let rows = report_rows(doc)?;
    let mut notes = Vec::new();

    let mut points: Vec<(u64, f64)> = Vec::new(); // (threads, events_processed)
    for (sweep, label, proto, metrics) in &rows {
        if sweep != "engine-threads" || proto != "hvdb-par" {
            continue;
        }
        let threads: u64 = label
            .strip_prefix("threads=")
            .and_then(|n| n.parse().ok())
            .ok_or_else(|| format!("engine-threads row has unparseable label {label:?}"))?;
        let events = metrics
            .iter()
            .find(|(k, _)| k == "events_processed")
            .map(|(_, v)| *v)
            .ok_or_else(|| format!("engine-threads row {label} has no events_processed"))?;
        points.push((threads, events));
    }
    if points.len() < 2 {
        return Err(format!(
            "need engine-threads hvdb-par rows at >= 2 thread counts, found {}",
            points.len()
        ));
    }
    points.sort_by_key(|p| p.0);
    let &(single_threads, single_events) = points.first().expect("len checked");
    if single_threads != 1 {
        return Err("engine-threads sweep has no threads=1 baseline row".into());
    }
    let diverged: Vec<String> = points
        .iter()
        .filter(|&&(_, events)| events != single_events)
        .map(|&(t, events)| {
            format!(
                "threads={t} processed {events:.0} events, threads=1 processed \
                 {single_events:.0}"
            )
        })
        .collect();
    if !diverged.is_empty() {
        return Err(format!(
            "HVDB on the parallel engine diverged — determinism contract broken: {}",
            diverged.join("; ")
        ));
    }
    notes.push(format!(
        "hvdb-par events_processed identical across {} thread counts",
        points.len()
    ));

    if !is_smoke(doc)? {
        // Every campaign point at or above the threshold must clear the
        // delivery floor; all violations are reported, not just the
        // first.
        let mut campaign: Vec<(u64, f64)> = Vec::new(); // (nodes, delivery)
        for (sweep, label, _, metrics) in &rows {
            if sweep != "network-size" {
                continue;
            }
            let Some(nodes) = label
                .strip_prefix("nodes=")
                .and_then(|n| n.parse::<u64>().ok())
            else {
                continue;
            };
            if nodes < SCALE_GATE_MIN_NODES {
                continue;
            }
            let delivery = metrics
                .iter()
                .find(|(k, _)| k == "delivery")
                .map(|(_, v)| *v)
                .ok_or_else(|| format!("network-size row {label} has no delivery metric"))?;
            campaign.push((nodes, delivery));
        }
        if campaign.is_empty() {
            return Err(format!(
                "full scale report has no network-size point at >= {SCALE_GATE_MIN_NODES} nodes"
            ));
        }
        campaign.sort_by_key(|p| p.0);
        let low: Vec<String> = campaign
            .iter()
            .filter(|&&(_, delivery)| delivery < SCALE_DELIVERY_FLOOR)
            .map(|&(nodes, delivery)| {
                format!(
                    "delivery {delivery:.3} at nodes={nodes} is below the scale-campaign \
                     floor {SCALE_DELIVERY_FLOOR}"
                )
            })
            .collect();
        if !low.is_empty() {
            return Err(low.join("; "));
        }
        let &(max_nodes, max_delivery) = campaign.last().expect("non-empty checked");
        notes.push(format!(
            "delivery >= {SCALE_DELIVERY_FLOOR} at {} campaign point(s), \
             {max_delivery:.3} at nodes={max_nodes}",
            campaign.len()
        ));
    }
    Ok(notes)
}

/// The CI gate over a validated `partition` report:
///
/// * at `phase=partition`, worst-seed `delivery_reachable_steady_worst`
///   must be at least [`PARTITION_REACHABLE_DELIVERY_FLOOR`] — once past
///   the re-election transient, the split network keeps serving every
///   receiver the radio can still reach;
/// * at `phase=healed`, `remerge_secs_worst` must be at most
///   [`PARTITION_REMERGE_BUDGET_SECS`] — the split head hierarchies
///   re-merge promptly once connectivity returns.
///
/// Refuses smoke reports; missing rows or metrics fail loudly. Returns
/// one human-readable note per passed check.
pub fn check_partition_gate(doc: &Json) -> Result<Vec<String>, String> {
    if is_smoke(doc)? {
        return Err(
            "partition gate needs a full run, not --smoke (smoke numbers are meaningless)".into(),
        );
    }
    let read = |label: &str, metric: &str| -> Result<f64, String> {
        metric_of(doc, "partition", label, "hvdb", metric)
            .ok_or_else(|| format!("no hvdb partition row at {label} with a {metric} metric"))
    };
    let mut notes = Vec::new();
    let reachable = read("phase=partition", "delivery_reachable_steady_worst")?;
    if reachable < PARTITION_REACHABLE_DELIVERY_FLOOR {
        return Err(format!(
            "worst-seed steady reachable delivery {reachable:.3} during the partition is below \
             the committed floor {PARTITION_REACHABLE_DELIVERY_FLOOR:.2}"
        ));
    }
    notes.push(format!(
        "steady reachable delivery {reachable:.3} >= {PARTITION_REACHABLE_DELIVERY_FLOOR} \
         during the split"
    ));
    let remerge = read("phase=healed", "remerge_secs_worst")?;
    if remerge > PARTITION_REMERGE_BUDGET_SECS {
        return Err(format!(
            "worst-seed head-hierarchy re-merge took {remerge:.1} s after the heal, over the \
             committed budget {PARTITION_REMERGE_BUDGET_SECS:.0} s"
        ));
    }
    notes.push(format!(
        "re-merge {remerge:.1} s <= {PARTITION_REMERGE_BUDGET_SECS:.0} s budget"
    ));
    match check_partition_timeline(doc)? {
        Some(derived) => notes.push(format!(
            "timeline cross-check: re-merge {derived:.1} s re-derived from the sample series \
             matches the probe measurement"
        )),
        None => notes.push("no timeline block (legacy report): cross-check skipped".into()),
    }
    Ok(notes)
}

/// The CI gate over a validated `byzantine` report: every `byz=k` row
/// with k > 0 must keep `damage_per_node` — mean delivery lost per
/// misbehaving node relative to the k=0 control — at or below
/// [`BYZANTINE_DAMAGE_PER_NODE`]. The k=0 control row must exist (the
/// damage metric is meaningless without its reference). Refuses smoke
/// reports. Returns one note per checked row.
pub fn check_byzantine_gate(doc: &Json) -> Result<Vec<String>, String> {
    if is_smoke(doc)? {
        return Err(
            "byzantine gate needs a full run, not --smoke (smoke numbers are meaningless)".into(),
        );
    }
    let rows = report_rows(doc)?;
    if !rows
        .iter()
        .any(|(s, l, p, _)| s == "byzantine" && l == "byz=0" && p == "hvdb")
    {
        return Err("no hvdb byzantine row at byz=0 (the damage reference)".into());
    }
    let mut notes = Vec::new();
    for (sweep, label, proto, metrics) in &rows {
        if sweep != "byzantine" || proto != "hvdb" || label == "byz=0" {
            continue;
        }
        let k: u64 = label
            .strip_prefix("byz=")
            .and_then(|n| n.parse().ok())
            .ok_or_else(|| format!("byzantine row has unparseable label {label:?}"))?;
        let damage = metrics
            .iter()
            .find(|(name, _)| name == "damage_per_node")
            .map(|(_, v)| *v)
            .ok_or_else(|| format!("byzantine row {label} has no damage_per_node metric"))?;
        if damage > BYZANTINE_DAMAGE_PER_NODE {
            return Err(format!(
                "delivery damage {damage:.3} per Byzantine node at {label} exceeds the \
                 committed ceiling {BYZANTINE_DAMAGE_PER_NODE:.2}"
            ));
        }
        notes.push(format!(
            "damage {damage:.3}/node <= {BYZANTINE_DAMAGE_PER_NODE:.2} at k={k}"
        ));
    }
    if notes.is_empty() {
        return Err("no hvdb byzantine rows with k > 0 to gate".into());
    }
    Ok(notes)
}

/// Whether a validated report document is a smoke run.
fn is_smoke(doc: &Json) -> Result<bool, String> {
    let fields = obj_fields(doc)?;
    Ok(matches!(field(fields, "smoke")?, Json::Bool(true)))
}

/// The CI gate over a validated `overhead` report: at the quiet point
/// ([`OVERHEAD_QUIET_POINT`]) the fixed-rate baseline's refresh-plane
/// frames/s must be at least [`OVERHEAD_QUIET_IMPROVEMENT`]× the
/// adaptive controller's, and the adaptive controller's total control
/// frames/s must stay under [`OVERHEAD_CEILING_FRAMES_PER_S`]. Returns
/// `(improvement ratio, adaptive control frames/s)`. Refuses smoke
/// reports.
pub fn check_overhead_gate(doc: &Json) -> Result<(f64, f64), String> {
    if is_smoke(doc)? {
        return Err(
            "overhead gate needs a full run, not --smoke (smoke numbers are meaningless)".into(),
        );
    }
    let read = |proto: &str, metric: &str| -> Result<f64, String> {
        metric_of(doc, "churn", OVERHEAD_QUIET_POINT, proto, metric).ok_or_else(|| {
            format!("no {proto} churn row at {OVERHEAD_QUIET_POINT} with a {metric} metric")
        })
    };
    let fixed = read("hvdb-fixed", "refresh_frames_per_s")?;
    let adaptive = read("hvdb-adaptive", "refresh_frames_per_s")?;
    if adaptive <= 0.0 {
        return Err(
            "adaptive quiet-phase refresh_frames_per_s is zero — measurement broken".into(),
        );
    }
    let ratio = fixed / adaptive;
    if ratio < OVERHEAD_QUIET_IMPROVEMENT {
        return Err(format!(
            "quiet-phase refresh overhead improvement {ratio:.2}x is below the committed \
             {OVERHEAD_QUIET_IMPROVEMENT:.1}x floor (fixed {fixed:.1} vs adaptive {adaptive:.1} frames/s)"
        ));
    }
    let total = read("hvdb-adaptive", "control_frames_per_s")?;
    if total > OVERHEAD_CEILING_FRAMES_PER_S {
        return Err(format!(
            "quiet-phase adaptive control traffic {total:.1} frames/s exceeds the committed \
             ceiling {OVERHEAD_CEILING_FRAMES_PER_S:.0}"
        ));
    }
    Ok((ratio, total))
}

/// The `traffic` scenario's saturation-knee gate.
///
/// Per protocol, the **knee** is the largest offered load such that the
/// sweep passes continuously up to it (mean delivery ≥
/// [`TRAFFIC_KNEE_DELIVERY_FLOOR`] *and* p99 latency ≤
/// [`TRAFFIC_KNEE_P99_CEILING_MS`] at every point at or below it —
/// prefix semantics, so a fluke recovery beyond saturation cannot move
/// the knee). The gate enforces the §5 load claim: HVDB's knee must sit
/// **strictly above** every [`TRAFFIC_BASELINE_PROTOS`] knee (which also
/// forces the sweep to actually extend past the baselines' knees), and
/// HVDB's p99 at [`TRAFFIC_P99_REFERENCE_POINT`] must stay inside
/// [`TRAFFIC_P99_BAND_MS`]. Refuses smoke reports. Returns
/// `(hvdb knee pps, reference-point p99 ms)`.
pub fn check_traffic_gate(doc: &Json) -> Result<(f64, f64), String> {
    if is_smoke(doc)? {
        return Err(
            "traffic gate needs a full run, not --smoke (smoke numbers are meaningless)".into(),
        );
    }
    let rows = report_rows(doc)?;
    // (offered, delivery, p99) per proto, ascending by offered load.
    let series = |proto: &str| -> Vec<(f64, f64, f64)> {
        let mut pts: Vec<(f64, f64, f64)> = rows
            .iter()
            .filter(|(s, _, p, _)| s == "offered-load" && p == proto)
            .filter_map(|(_, label, _, m)| {
                // Non-finite labels (a corrupt "pps=nan" parses!) are
                // skipped rather than poisoning the sort below.
                let offered = label
                    .strip_prefix("pps=")?
                    .parse::<f64>()
                    .ok()
                    .filter(|o| o.is_finite())?;
                let get = |k: &str| m.iter().find(|(n, _)| n == k).map(|(_, v)| *v);
                Some((offered, get("delivery")?, get("p99_ms")?))
            })
            .collect();
        pts.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .expect("offered loads filtered finite")
        });
        pts
    };
    let knee = |pts: &[(f64, f64, f64)]| -> f64 {
        let mut knee = 0.0;
        for &(offered, delivery, p99) in pts {
            if delivery >= TRAFFIC_KNEE_DELIVERY_FLOOR && p99 <= TRAFFIC_KNEE_P99_CEILING_MS {
                knee = offered;
            } else {
                break;
            }
        }
        knee
    };
    let hvdb = series("hvdb");
    if hvdb.is_empty() {
        return Err("no hvdb offered-load rows with delivery and p99_ms metrics".into());
    }
    let hvdb_knee = knee(&hvdb);
    if hvdb_knee <= 0.0 {
        return Err(format!(
            "hvdb fails the knee rule at the lowest offered point ({:.3} delivery, {:.1} ms p99)",
            hvdb[0].1, hvdb[0].2
        ));
    }
    for baseline in TRAFFIC_BASELINE_PROTOS {
        let pts = series(baseline);
        if pts.is_empty() {
            return Err(format!(
                "no {baseline} offered-load rows in the traffic report"
            ));
        }
        let b_knee = knee(&pts);
        if hvdb_knee <= b_knee {
            return Err(format!(
                "hvdb sustains {hvdb_knee:.0} pps but {baseline} sustains {b_knee:.0} — \
                 the backbone must out-sustain its baselines strictly"
            ));
        }
    }
    let p99 = metric_of(
        doc,
        "offered-load",
        TRAFFIC_P99_REFERENCE_POINT,
        "hvdb",
        "p99_ms",
    )
    .ok_or_else(|| {
        format!("no hvdb offered-load row at {TRAFFIC_P99_REFERENCE_POINT} with a p99_ms metric")
    })?;
    let (lo, hi) = TRAFFIC_P99_BAND_MS;
    if !(lo..=hi).contains(&p99) {
        return Err(format!(
            "hvdb p99 {p99:.1} ms at {TRAFFIC_P99_REFERENCE_POINT} left the committed \
             [{lo:.0}, {hi:.0}] ms band"
        ));
    }
    Ok((hvdb_knee, p99))
}

/// Row coordinates and metrics extracted from a validated report:
/// `(sweep, label, proto, metrics)`.
type ReportRow = (String, String, String, Vec<(String, f64)>);

fn report_rows(doc: &Json) -> Result<Vec<ReportRow>, String> {
    let fields = obj_fields(doc)?;
    let Json::Arr(rows) = field(fields, "rows")? else {
        return Err("rows: expected array".into());
    };
    let mut out = Vec::new();
    for row in rows {
        let rf = obj_fields(row)?;
        let get = |key: &str| -> Result<String, String> {
            as_str(field(rf, key)?, key).map(str::to_string)
        };
        let Json::Obj(metrics) = field(rf, "metrics")? else {
            return Err("metrics: expected object".into());
        };
        let metrics: Vec<(String, f64)> = metrics
            .iter()
            .filter_map(|(k, v)| match v {
                Json::Num(n) => Some((k.clone(), *n)),
                _ => None,
            })
            .collect();
        out.push((get("sweep")?, get("label")?, get("proto")?, metrics));
    }
    Ok(out)
}

/// The bench-trajectory gate: compares a freshly produced `candidate`
/// report against the committed `baseline` within tolerance bands —
/// every baseline row must exist in the candidate, `delivery` may
/// regress at most `delivery_tol` (fraction), and the
/// [`OVERHEAD_GATED_METRICS`] may grow at most `overhead_tol`. Refuses
/// smoke candidates. Returns one summary line per compared row; all
/// violations are collected into the error, not just the first.
pub fn check_trajectory(
    candidate: &Json,
    baseline: &Json,
    delivery_tol: f64,
    overhead_tol: f64,
) -> Result<Vec<String>, String> {
    if is_smoke(candidate)? {
        return Err("trajectory gate needs a full run, not --smoke".into());
    }
    let base_rows = report_rows(baseline)?;
    let cand_rows = report_rows(candidate)?;
    let mut summary = Vec::new();
    let mut violations = Vec::new();
    for (sweep, label, proto, metrics) in &base_rows {
        let coord = format!("{sweep}/{label}/{proto}");
        let Some((.., cand_metrics)) = cand_rows
            .iter()
            .find(|(s, l, p, _)| s == sweep && l == label && p == proto)
        else {
            violations.push(format!("row {coord} missing from candidate"));
            continue;
        };
        let cand = |name: &str| {
            cand_metrics
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| *v)
        };
        for (name, base_v) in metrics {
            if name == "delivery" {
                let floor = base_v * (1.0 - delivery_tol);
                match cand(name) {
                    Some(v) if v >= floor => {
                        summary.push(format!("{coord}: delivery {v:.3} vs baseline {base_v:.3}"))
                    }
                    Some(v) => violations.push(format!(
                        "{coord}: delivery {v:.3} regressed more than {:.0}% below baseline {base_v:.3}",
                        delivery_tol * 100.0
                    )),
                    None => violations.push(format!("{coord}: delivery metric missing")),
                }
            } else if OVERHEAD_GATED_METRICS.contains(&name.as_str()) {
                let ceiling = base_v * (1.0 + overhead_tol);
                match cand(name) {
                    Some(v) if v <= ceiling || *base_v == 0.0 && v == 0.0 => {
                        summary.push(format!("{coord}: {name} {v:.1} vs baseline {base_v:.1}"))
                    }
                    Some(v) => violations.push(format!(
                        "{coord}: {name} {v:.1} grew more than {:.0}% over baseline {base_v:.1}",
                        overhead_tol * 100.0
                    )),
                    None => violations.push(format!("{coord}: {name} metric missing")),
                }
            }
        }
    }
    if violations.is_empty() {
        Ok(summary)
    } else {
        Err(violations.join("; "))
    }
}

/// The strict JSON parser behind [`parse_strict`].
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        match self.bump() {
            Some(got) if got == b => Ok(()),
            got => Err(format!(
                "expected {:?}, got {:?}",
                b as char,
                got.map(|g| g as char)
            )),
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Json::Str),
            Some(b't') => self.literal("true").map(|()| Json::Bool(true)),
            Some(b'f') => self.literal("false").map(|()| Json::Bool(false)),
            Some(b'n') => self.literal("null").map(|()| Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?}")),
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        for &b in lit.as_bytes() {
            self.expect(b)?;
        }
        Ok(())
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        self.skip_ws();
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Json::Obj(fields)),
                got => return Err(format!("in object: got {got:?}")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        self.skip_ws();
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Json::Arr(items)),
                got => return Err(format!("in array: got {got:?}")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            match self.bump() {
                                Some(h) if h.is_ascii_hexdigit() => {
                                    code = code * 16 + (h as char).to_digit(16).expect("hexdigit");
                                }
                                got => return Err(format!("bad \\u escape: {got:?}")),
                            }
                        }
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    got => return Err(format!("bad escape: {got:?}")),
                },
                Some(c) if c < 0x20 => return Err("raw control char in string".into()),
                Some(c) if c < 0x80 => out.push(c as char),
                Some(c) => {
                    // Re-assemble UTF-8 (input came from &str, so it is
                    // valid by construction; walk the continuation bytes).
                    let len = match c {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let start = self.pos - 1;
                    for _ in 1..len {
                        self.bump();
                    }
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| "invalid UTF-8 in string".to_string())?;
                    out.push_str(s);
                }
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut digits = 0;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
            digits += 1;
        }
        if digits == 0 {
            return Err("number with no digits".into());
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let mut frac = 0;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
                frac += 1;
            }
            if frac == 0 {
                return Err("fraction with no digits".into());
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let mut exp = 0;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
                exp += 1;
            }
            if exp == 0 {
                return Err("exponent with no digits".into());
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("unparseable number {text:?}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{Row, ScenarioReport};

    fn report(scenario: &str, rows: Vec<Row>) -> String {
        ScenarioReport {
            scenario: scenario.into(),
            figure: "Fig. X".into(),
            summary: "s".into(),
            smoke: false,
            threads: 1,
            workload: None,
            timeline: None,
            profile: None,
            rows,
        }
        .to_json()
        .to_string()
    }

    fn sample(t: f64, heads: f64) -> Json {
        Json::Obj(vec![
            ("t_secs".into(), Json::Num(t)),
            ("heads".into(), Json::Num(heads)),
            ("delivery".into(), Json::Num(1.0)),
            ("control_frames".into(), Json::Num(10.0)),
            ("memory_per_node_bytes".into(), Json::Num(100.0)),
        ])
    }

    fn timeline_block(annotations: &[(&str, f64)], samples: Vec<Json>) -> Json {
        let mut fields = vec![("interval_secs".to_string(), Json::Num(1.0))];
        for (k, v) in annotations {
            fields.push((k.to_string(), Json::Num(*v)));
        }
        fields.push(("samples".into(), Json::Arr(samples)));
        Json::Obj(fields)
    }

    fn report_with_blocks(
        scenario: &str,
        rows: Vec<Row>,
        timeline: Option<Json>,
        profile: Option<Json>,
    ) -> String {
        ScenarioReport {
            scenario: scenario.into(),
            figure: "Fig. X".into(),
            summary: "s".into(),
            smoke: false,
            threads: 1,
            workload: None,
            timeline,
            profile,
            rows,
        }
        .to_json()
        .to_string()
    }

    #[test]
    fn writer_output_round_trips_the_validator() {
        let s = report(
            "loss",
            vec![Row::new(
                "frame-loss",
                "loss=0.15",
                "hvdb",
                vec![("delivery_worst".into(), 0.93), ("delivery".into(), 0.97)],
            )],
        );
        let doc = validate_report_str(&s).expect("valid report");
        assert_eq!(
            metric_of(&doc, "frame-loss", "loss=0.15", "hvdb", "delivery_worst"),
            Some(0.93)
        );
    }

    fn any_rows() -> Vec<Row> {
        vec![Row::new(
            "axis",
            "n=1",
            "hvdb",
            vec![("delivery".into(), 1.0)],
        )]
    }

    #[test]
    fn timeline_block_is_schema_checked() {
        let good = timeline_block(&[], vec![sample(1.0, 5.0), sample(2.0, 4.0)]);
        let s = report_with_blocks("x", any_rows(), Some(good), None);
        validate_report_str(&s).expect("valid timeline accepted");

        // Non-increasing t_secs.
        let bad = timeline_block(&[], vec![sample(2.0, 5.0), sample(2.0, 4.0)]);
        let s = report_with_blocks("x", any_rows(), Some(bad), None);
        assert!(validate_report_str(&s).unwrap_err().contains("t_secs"));

        // Empty series.
        let bad = timeline_block(&[], vec![]);
        let s = report_with_blocks("x", any_rows(), Some(bad), None);
        assert!(validate_report_str(&s)
            .unwrap_err()
            .contains("empty sample"));

        // Sample missing a required field.
        let bad = timeline_block(
            &[],
            vec![Json::Obj(vec![("t_secs".into(), Json::Num(1.0))])],
        );
        let s = report_with_blocks("x", any_rows(), Some(bad), None);
        assert!(validate_report_str(&s).is_err());
    }

    #[test]
    fn profile_block_is_schema_checked() {
        let good = Json::Obj(vec![
            ("windows".into(), Json::Num(8.0)),
            ("drain_secs".into(), Json::Num(0.5)),
            ("commit_secs".into(), Json::Num(0.2)),
            ("barrier_secs".into(), Json::Num(0.0)),
            (
                "lane_busy_secs".into(),
                Json::Arr(vec![Json::Num(0.2), Json::Num(0.3)]),
            ),
        ]);
        let s = report_with_blocks("x", any_rows(), None, Some(good));
        validate_report_str(&s).expect("valid profile accepted");

        let bad = Json::Obj(vec![
            ("windows".into(), Json::Num(8.0)),
            ("drain_secs".into(), Json::Num(-1.0)),
            ("commit_secs".into(), Json::Num(0.2)),
            ("barrier_secs".into(), Json::Num(0.0)),
            ("lane_busy_secs".into(), Json::Arr(vec![])),
        ]);
        let s = report_with_blocks("x", any_rows(), None, Some(bad));
        assert!(validate_report_str(&s).unwrap_err().contains("drain_secs"));
    }

    #[test]
    fn partition_timeline_cross_check_derives_the_same_remerge() {
        // Heal at t=3; census returns to the target (5) at t=5 → derived
        // re-merge 2 s, matching the probe annotation.
        let tl = timeline_block(
            &[
                ("split_at_secs", 1.0),
                ("heal_at_secs", 3.0),
                ("heads_target", 5.0),
                ("remerge_secs_probe", 2.0),
            ],
            vec![
                sample(1.0, 5.0),
                sample(2.0, 9.0),
                sample(3.0, 9.0),
                sample(4.0, 8.0),
                sample(5.0, 5.0),
                sample(6.0, 5.0),
            ],
        );
        let s = report_with_blocks("partition", any_rows(), Some(tl), None);
        let doc = validate_report_str(&s).unwrap();
        assert_eq!(check_partition_timeline(&doc).unwrap(), Some(2.0));

        // A report without the block passes (legacy reports predate it).
        let s = report("partition", any_rows());
        let doc = validate_report_str(&s).unwrap();
        assert_eq!(check_partition_timeline(&doc).unwrap(), None);
    }

    #[test]
    fn partition_timeline_cross_check_rejects_disagreement() {
        // Derived re-merge is 2 s but the probe annotation claims 4 s.
        let tl = timeline_block(
            &[
                ("heal_at_secs", 3.0),
                ("heads_target", 5.0),
                ("remerge_secs_probe", 4.0),
            ],
            vec![sample(3.0, 9.0), sample(5.0, 5.0)],
        );
        let s = report_with_blocks("partition", any_rows(), Some(tl), None);
        let doc = validate_report_str(&s).unwrap();
        assert!(check_partition_timeline(&doc)
            .unwrap_err()
            .contains("disagrees"));

        // Census never returns to the target.
        let tl = timeline_block(
            &[
                ("heal_at_secs", 3.0),
                ("heads_target", 5.0),
                ("remerge_secs_probe", 2.0),
            ],
            vec![sample(3.0, 9.0), sample(5.0, 9.0)],
        );
        let s = report_with_blocks("partition", any_rows(), Some(tl), None);
        let doc = validate_report_str(&s).unwrap();
        assert!(check_partition_timeline(&doc)
            .unwrap_err()
            .contains("never returns"));
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse_strict("{\"a\": 1,}").is_err());
        assert!(parse_strict("{\"a\": 1} extra").is_err());
        assert!(parse_strict("{\"a\": 01e}").is_err());
        assert!(parse_strict("\"unterminated").is_err());
        assert!(parse_strict("{\"a\": nul}").is_err());
        assert!(parse_strict("[1, 2,]").is_err());
    }

    #[test]
    fn schema_rejects_wrong_shapes() {
        // Not an object.
        assert!(validate_report_str("[1]").is_err());
        // Missing fields.
        assert!(validate_report_str("{\"scenario\": \"x\"}").is_err());
        // Unknown top-level key.
        let s = "{\"scenario\": \"x\", \"figure\": \"f\", \"summary\": \"s\", \"smoke\": false, \"threads\": 1, \"rows\": [], \"extra\": 1}";
        assert!(validate_report_str(s).is_err());
        // Missing threads field.
        let s = "{\"scenario\": \"x\", \"figure\": \"f\", \"summary\": \"s\", \"smoke\": false, \"rows\": [{\"sweep\": \"a\", \"label\": \"b\", \"proto\": \"c\", \"metrics\": {\"m\": 1}}]}";
        assert!(validate_report_str(s).unwrap_err().contains("threads"));
        // Zero and fractional thread counts are nonsense.
        for bad in ["0", "1.5", "-2", "true"] {
            let s = format!(
                "{{\"scenario\": \"x\", \"figure\": \"f\", \"summary\": \"s\", \"smoke\": false, \"threads\": {bad}, \"rows\": [{{\"sweep\": \"a\", \"label\": \"b\", \"proto\": \"c\", \"metrics\": {{\"m\": 1}}}}]}}"
            );
            assert!(validate_report_str(&s).unwrap_err().contains("threads"));
        }
        // Empty rows.
        let s = "{\"scenario\": \"x\", \"figure\": \"f\", \"summary\": \"s\", \"smoke\": false, \"threads\": 1, \"rows\": []}";
        assert!(validate_report_str(s).is_err());
        // Non-finite metric serializes as null and must be rejected.
        let s = report(
            "x",
            vec![Row::new("a", "b", "c", vec![("m".into(), f64::NAN)])],
        );
        assert!(validate_report_str(&s).is_err());
    }

    #[test]
    fn loss_gate_passes_and_fails_on_the_floor() {
        let ok = report(
            "loss",
            vec![Row::new(
                "frame-loss",
                LOSS_GATE_POINT,
                "hvdb",
                vec![("delivery_worst".into(), LOSS_DELIVERY_FLOOR + 0.02)],
            )],
        );
        let doc = validate_report_str(&ok).unwrap();
        assert!(check_loss_floor(&doc, LOSS_DELIVERY_FLOOR).is_ok());

        let bad = report(
            "loss",
            vec![Row::new(
                "frame-loss",
                LOSS_GATE_POINT,
                "hvdb",
                vec![("delivery_worst".into(), LOSS_DELIVERY_FLOOR - 0.05)],
            )],
        );
        let doc = validate_report_str(&bad).unwrap();
        assert!(check_loss_floor(&doc, LOSS_DELIVERY_FLOOR).is_err());

        // Missing gate row.
        let none = report(
            "loss",
            vec![Row::new(
                "frame-loss",
                "loss=0",
                "hvdb",
                vec![("delivery".into(), 1.0)],
            )],
        );
        let doc = validate_report_str(&none).unwrap();
        assert!(check_loss_floor(&doc, LOSS_DELIVERY_FLOOR).is_err());
    }

    #[test]
    fn loss_gate_refuses_smoke_reports() {
        let mut rep = ScenarioReport {
            scenario: "loss".into(),
            figure: "f".into(),
            summary: "s".into(),
            smoke: true,
            threads: 1,
            workload: None,
            timeline: None,
            profile: None,
            rows: vec![Row::new(
                "frame-loss",
                LOSS_GATE_POINT,
                "hvdb",
                vec![("delivery_worst".into(), 1.0)],
            )],
        };
        let doc = validate_report_str(&rep.to_json().to_string()).unwrap();
        assert!(check_loss_floor(&doc, LOSS_DELIVERY_FLOOR).is_err());
        rep.smoke = false;
        let doc = validate_report_str(&rep.to_json().to_string()).unwrap();
        assert!(check_loss_floor(&doc, LOSS_DELIVERY_FLOOR).is_ok());
    }

    fn overhead_report(fixed_refresh: f64, adaptive_refresh: f64, adaptive_total: f64) -> String {
        report(
            "overhead",
            vec![
                Row::new(
                    "churn",
                    OVERHEAD_QUIET_POINT,
                    "hvdb-fixed",
                    vec![
                        ("refresh_frames_per_s".into(), fixed_refresh),
                        ("control_frames_per_s".into(), adaptive_total * 1.5),
                    ],
                ),
                Row::new(
                    "churn",
                    OVERHEAD_QUIET_POINT,
                    "hvdb-adaptive",
                    vec![
                        ("refresh_frames_per_s".into(), adaptive_refresh),
                        ("control_frames_per_s".into(), adaptive_total),
                    ],
                ),
            ],
        )
    }

    #[test]
    fn overhead_gate_enforces_ratio_and_ceiling() {
        // 3x improvement, total under the ceiling: passes.
        let doc = validate_report_str(&overhead_report(600.0, 200.0, 700.0)).unwrap();
        let (ratio, total) = check_overhead_gate(&doc).expect("gate passes");
        assert!((ratio - 3.0).abs() < 1e-9);
        assert!((total - 700.0).abs() < 1e-9);
        // Only 1.5x improvement: fails.
        let doc = validate_report_str(&overhead_report(300.0, 200.0, 700.0)).unwrap();
        assert!(check_overhead_gate(&doc).unwrap_err().contains("below"));
        // Ratio fine but total control traffic blew through the ceiling.
        let doc = validate_report_str(&overhead_report(
            9000.0,
            200.0,
            OVERHEAD_CEILING_FRAMES_PER_S + 1.0,
        ))
        .unwrap();
        assert!(check_overhead_gate(&doc).unwrap_err().contains("ceiling"));
        // Missing quiet rows: fails loudly.
        let doc = validate_report_str(&report(
            "overhead",
            vec![Row::new(
                "churn",
                "churn=12",
                "hvdb-adaptive",
                vec![("refresh_frames_per_s".into(), 1.0)],
            )],
        ))
        .unwrap();
        assert!(check_overhead_gate(&doc).is_err());
    }

    #[test]
    fn overhead_gate_refuses_smoke() {
        let mut rep = overhead_report(600.0, 200.0, 700.0);
        rep = rep.replace("\"smoke\": false", "\"smoke\": true");
        let doc = validate_report_str(&rep).unwrap();
        assert!(check_overhead_gate(&doc).unwrap_err().contains("smoke"));
    }

    fn scale_row(delivery: f64, frames: f64) -> Row {
        Row::new(
            "network-size",
            "nodes=200",
            "hvdb",
            vec![
                ("delivery".into(), delivery),
                ("control_frames_per_s".into(), frames),
                ("latency_ms".into(), 17.0), // un-gated metric: free to move
            ],
        )
    }

    #[test]
    fn trajectory_gate_bands_delivery_and_overhead() {
        let baseline = validate_report_str(&report("scale", vec![scale_row(1.0, 500.0)])).unwrap();
        // Within both bands: passes with a summary line per checked row.
        let cand = validate_report_str(&report("scale", vec![scale_row(0.95, 540.0)])).unwrap();
        let summary = check_trajectory(&cand, &baseline, 0.10, 0.15).expect("within bands");
        assert_eq!(summary.len(), 2);
        // Delivery regressed past the band.
        let cand = validate_report_str(&report("scale", vec![scale_row(0.85, 500.0)])).unwrap();
        let err = check_trajectory(&cand, &baseline, 0.10, 0.15).unwrap_err();
        assert!(err.contains("delivery"), "{err}");
        // Overhead grew past the band.
        let cand = validate_report_str(&report("scale", vec![scale_row(1.0, 600.0)])).unwrap();
        let err = check_trajectory(&cand, &baseline, 0.10, 0.15).unwrap_err();
        assert!(err.contains("control_frames_per_s"), "{err}");
        // A baseline row vanishing from the candidate is a failure, not a
        // silent skip.
        let other = Row::new(
            "network-size",
            "nodes=400",
            "hvdb",
            vec![("delivery".into(), 1.0)],
        );
        let cand = validate_report_str(&report("scale", vec![other])).unwrap();
        let err = check_trajectory(&cand, &baseline, 0.10, 0.15).unwrap_err();
        assert!(err.contains("missing"), "{err}");
    }

    #[test]
    fn trajectory_gate_collects_every_violation() {
        let baseline = validate_report_str(&report("scale", vec![scale_row(1.0, 500.0)])).unwrap();
        let cand = validate_report_str(&report("scale", vec![scale_row(0.5, 900.0)])).unwrap();
        let err = check_trajectory(&cand, &baseline, 0.10, 0.15).unwrap_err();
        assert!(
            err.contains("delivery") && err.contains("control_frames_per_s"),
            "{err}"
        );
    }

    fn loss_row(point: &str, worst: f64) -> Row {
        Row::new(
            "frame-loss",
            point,
            "hvdb",
            vec![("delivery_worst".into(), worst)],
        )
    }

    #[test]
    fn loss_high_band_gates_both_points() {
        let ok = report(
            "loss",
            vec![loss_row("loss=0.25", 0.95), loss_row("loss=0.3", 0.94)],
        );
        let doc = validate_report_str(&ok).unwrap();
        let band = check_loss_high_band(&doc).expect("band holds");
        assert_eq!(band.len(), 2);
        // One point under the band fails.
        let bad = report(
            "loss",
            vec![
                loss_row("loss=0.25", 0.95),
                loss_row("loss=0.3", LOSS_HIGH_FLOOR - 0.01),
            ],
        );
        let doc = validate_report_str(&bad).unwrap();
        assert!(check_loss_high_band(&doc).unwrap_err().contains("loss=0.3"));
        // A missing point fails loudly instead of silently passing.
        let partial = report("loss", vec![loss_row("loss=0.25", 0.99)]);
        let doc = validate_report_str(&partial).unwrap();
        assert!(check_loss_high_band(&doc)
            .unwrap_err()
            .contains("no hvdb frame-loss row"));
    }

    fn traffic_row(pps: f64, proto: &str, delivery: f64, p99_ms: f64) -> Row {
        Row::new(
            "offered-load",
            format!("pps={pps}"),
            proto,
            vec![("delivery".into(), delivery), ("p99_ms".into(), p99_ms)],
        )
    }

    /// A traffic report where hvdb knees at `hvdb_knee` pps and both
    /// baselines knee at `base_knee` pps, over the standard sweep.
    fn traffic_report(hvdb_knee: f64, base_knee: f64) -> String {
        let sweep = [20.0, 80.0, 160.0, 320.0, 640.0];
        let mut rows = Vec::new();
        for &pps in &sweep {
            for proto in ["hvdb", "flooding", "shared-tree"] {
                let k = if proto == "hvdb" {
                    hvdb_knee
                } else {
                    base_knee
                };
                let (d, p99) = if pps <= k {
                    (0.99, 40.0)
                } else {
                    (0.4, 2_000.0)
                };
                rows.push(traffic_row(pps, proto, d, p99));
            }
        }
        report("traffic", rows)
    }

    #[test]
    fn traffic_gate_enforces_knee_ordering() {
        // hvdb knees at 320, baselines at 80: passes, knee reported.
        let doc = validate_report_str(&traffic_report(320.0, 80.0)).unwrap();
        let (knee, p99) = check_traffic_gate(&doc).expect("gate passes");
        assert_eq!(knee, 320.0);
        assert!((p99 - 40.0).abs() < 1e-9);
        // Baselines sustain as much as hvdb: fails (strict ordering).
        let doc = validate_report_str(&traffic_report(320.0, 320.0)).unwrap();
        assert!(check_traffic_gate(&doc)
            .unwrap_err()
            .contains("out-sustain"));
        // hvdb knees below a baseline: fails.
        let doc = validate_report_str(&traffic_report(80.0, 160.0)).unwrap();
        assert!(check_traffic_gate(&doc).is_err());
    }

    #[test]
    fn traffic_knee_uses_prefix_semantics() {
        // hvdb "recovers" at 640 after failing at 320: the knee must
        // still be 160, and with baselines at 160 the gate fails.
        let mut rows = Vec::new();
        for &(pps, d, p99) in &[
            (20.0, 0.99, 30.0),
            (160.0, 0.97, 50.0),
            (320.0, 0.50, 900.0),
            (640.0, 0.95, 60.0), // past-saturation fluke
        ] {
            rows.push(traffic_row(pps, "hvdb", d, p99));
            let (bd, bp) = if pps <= 160.0 {
                (0.95, 45.0)
            } else {
                (0.3, 3_000.0)
            };
            rows.push(traffic_row(pps, "flooding", bd, bp));
            rows.push(traffic_row(pps, "shared-tree", bd, bp));
        }
        let doc = validate_report_str(&report("traffic", rows)).unwrap();
        let err = check_traffic_gate(&doc).unwrap_err();
        assert!(err.contains("160"), "{err}");
    }

    #[test]
    fn traffic_gate_checks_p99_band_and_refuses_smoke() {
        // Reference-point p99 outside the band: fails even with the knee
        // ordering intact.
        let sweep = [20.0, 80.0, 160.0, 320.0, 640.0];
        let mut rows = Vec::new();
        for &pps in &sweep {
            let p99 = if pps == 160.0 {
                TRAFFIC_P99_BAND_MS.1 + 1.0
            } else {
                40.0
            };
            rows.push(traffic_row(pps, "hvdb", 0.99, p99));
            let (bd, bp) = if pps <= 80.0 {
                (0.95, 45.0)
            } else {
                (0.3, 3_000.0)
            };
            rows.push(traffic_row(pps, "flooding", bd, bp));
            rows.push(traffic_row(pps, "shared-tree", bd, bp));
        }
        let doc = validate_report_str(&report("traffic", rows)).unwrap();
        assert!(check_traffic_gate(&doc).unwrap_err().contains("band"));
        // Smoke reports are refused outright.
        let smoke = traffic_report(320.0, 80.0).replace("\"smoke\": false", "\"smoke\": true");
        let doc = validate_report_str(&smoke).unwrap();
        assert!(check_traffic_gate(&doc).unwrap_err().contains("smoke"));
        // Missing baseline rows fail loudly.
        let hvdb_only = report("traffic", vec![traffic_row(20.0, "hvdb", 0.99, 30.0)]);
        let doc = validate_report_str(&hvdb_only).unwrap();
        assert!(check_traffic_gate(&doc).unwrap_err().contains("flooding"));
    }

    fn perf_row(label: &str, proto: &str, eps: f64, events: f64) -> Row {
        Row::new(
            "delivery-mode",
            label,
            proto,
            vec![
                ("events_per_s".into(), eps),
                ("events_processed".into(), events),
            ],
        )
    }

    #[test]
    fn perf_gate_checks_speedup_at_largest_common_point() {
        // Gate applies at nodes=600 (largest label present in both arms),
        // not at the slower 200-point.
        let rep_ok = report(
            "perf",
            vec![
                perf_row("nodes=200", "hvdb-shared", 9e6, 5e6),
                perf_row("nodes=200", "hvdb-cloned", 6e6, 5e6),
                perf_row("nodes=600", "hvdb-shared", 9e6, 8e6),
                perf_row("nodes=600", "hvdb-cloned", 3e6, 8e6),
            ],
        );
        let doc = validate_report_str(&rep_ok).unwrap();
        let (label, speedup) = check_perf_gate(&doc, 2.0).expect("gate passes");
        assert_eq!(label, "nodes=600");
        assert!((speedup - 3.0).abs() < 1e-9);
        // Below the floor: fails.
        assert!(check_perf_gate(&doc, 3.5).unwrap_err().contains("below"));
    }

    #[test]
    fn perf_gate_requires_identical_event_counts() {
        let rep_bad = report(
            "perf",
            vec![
                perf_row("nodes=600", "hvdb-shared", 9e6, 8e6),
                perf_row("nodes=600", "hvdb-cloned", 3e6, 8e6 + 1.0),
            ],
        );
        let doc = validate_report_str(&rep_bad).unwrap();
        assert!(check_perf_gate(&doc, 2.0).unwrap_err().contains("diverged"));
        // No common label at all: loud failure.
        let rep_none = report("perf", vec![perf_row("nodes=600", "hvdb-shared", 9e6, 8e6)]);
        let doc = validate_report_str(&rep_none).unwrap();
        assert!(check_perf_gate(&doc, 2.0).is_err());
    }

    fn threads_row(threads: u64, eps: f64, events: f64, hw: f64) -> Row {
        Row::new(
            "engine-threads",
            format!("threads={threads}"),
            "par-flood",
            vec![
                ("events_per_s".into(), eps),
                ("events_processed".into(), events),
                ("hardware_threads".into(), hw),
            ],
        )
    }

    #[test]
    fn threads_gate_enforces_speedup_on_capable_machines() {
        // 4 threads on a 4-core box at 2.5x: enforced and passing.
        let rep = report(
            "perf",
            vec![
                threads_row(1, 1e6, 5e6, 4.0),
                threads_row(4, 2.5e6, 5e6, 4.0),
            ],
        );
        let doc = validate_report_str(&rep).unwrap();
        let (label, speedup, enforced) = check_perf_threads_gate(&doc, 2.0).expect("passes");
        assert_eq!(label, "threads=4");
        assert!((speedup - 2.5).abs() < 1e-9);
        assert!(enforced);
        // Below the floor on a capable machine: fails.
        let rep = report(
            "perf",
            vec![
                threads_row(1, 1e6, 5e6, 4.0),
                threads_row(4, 1.5e6, 5e6, 4.0),
            ],
        );
        let doc = validate_report_str(&rep).unwrap();
        assert!(check_perf_threads_gate(&doc, 2.0)
            .unwrap_err()
            .contains("below"));
    }

    #[test]
    fn threads_gate_skips_speedup_without_hardware_parallelism() {
        // Same sub-floor ratio, but only 1 hardware thread: the speedup
        // half is waived (timesliced threads measure nothing)...
        let rep = report(
            "perf",
            vec![
                threads_row(1, 1e6, 5e6, 1.0),
                threads_row(4, 0.9e6, 5e6, 1.0),
            ],
        );
        let doc = validate_report_str(&rep).unwrap();
        let (_, _, enforced) = check_perf_threads_gate(&doc, 2.0).expect("waived");
        assert!(!enforced);
        // ...but the determinism half never is.
        let rep = report(
            "perf",
            vec![
                threads_row(1, 1e6, 5e6, 1.0),
                threads_row(4, 0.9e6, 5e6 + 1.0, 1.0),
            ],
        );
        let doc = validate_report_str(&rep).unwrap();
        assert!(check_perf_threads_gate(&doc, 2.0)
            .unwrap_err()
            .contains("diverged"));
    }

    #[test]
    fn threads_gate_requires_both_rows() {
        let rep = report("perf", vec![threads_row(4, 2.5e6, 5e6, 4.0)]);
        let doc = validate_report_str(&rep).unwrap();
        assert!(check_perf_threads_gate(&doc, 2.0).is_err());
        // Two rows but no threads=1 baseline.
        let rep = report(
            "perf",
            vec![threads_row(2, 1e6, 5e6, 4.0), threads_row(4, 2e6, 5e6, 4.0)],
        );
        let doc = validate_report_str(&rep).unwrap();
        assert!(check_perf_threads_gate(&doc, 2.0)
            .unwrap_err()
            .contains("baseline"));
    }

    #[test]
    fn schema_accepts_optional_workload_block() {
        // A workload object between threads and rows validates...
        let s = "{\"scenario\": \"partition\", \"figure\": \"f\", \"summary\": \"s\", \
                  \"smoke\": false, \"threads\": 1, \
                  \"workload\": {\"fault_plan\": [{\"at_us\": 1, \"kind\": \"heal\"}]}, \
                  \"rows\": [{\"sweep\": \"a\", \"label\": \"b\", \"proto\": \"c\", \
                  \"metrics\": {\"m\": 1}}]}";
        validate_report_str(s).expect("workload block accepted");
        // ...but only as an object.
        let s = s.replace(
            "{\"fault_plan\": [{\"at_us\": 1, \"kind\": \"heal\"}]}",
            "\"oops\"",
        );
        assert!(validate_report_str(&s).unwrap_err().contains("workload"));
    }

    fn partition_rows(reachable_worst: f64, remerge_worst: f64) -> Vec<Row> {
        vec![
            Row::new(
                "partition",
                "phase=partition",
                "hvdb",
                vec![("delivery_reachable_steady_worst".into(), reachable_worst)],
            ),
            Row::new(
                "partition",
                "phase=healed",
                "hvdb",
                vec![("remerge_secs_worst".into(), remerge_worst)],
            ),
        ]
    }

    #[test]
    fn partition_gate_enforces_floor_and_remerge_budget() {
        let ok = report("partition", partition_rows(0.99, 10.0));
        let doc = validate_report_str(&ok).unwrap();
        // Two numeric gates plus the timeline cross-check note (skipped
        // here: the synthetic report has no timeline block).
        assert_eq!(check_partition_gate(&doc).expect("passes").len(), 3);
        // Reachable delivery under the floor.
        let bad = report(
            "partition",
            partition_rows(PARTITION_REACHABLE_DELIVERY_FLOOR - 0.01, 10.0),
        );
        let doc = validate_report_str(&bad).unwrap();
        assert!(check_partition_gate(&doc)
            .unwrap_err()
            .contains("reachable"));
        // Re-merge over budget.
        let bad = report(
            "partition",
            partition_rows(0.99, PARTITION_REMERGE_BUDGET_SECS + 1.0),
        );
        let doc = validate_report_str(&bad).unwrap();
        assert!(check_partition_gate(&doc).unwrap_err().contains("re-merge"));
        // Missing rows fail loudly; smoke is refused.
        let none = report("partition", partition_rows(0.99, 10.0)[..1].to_vec());
        let doc = validate_report_str(&none).unwrap();
        assert!(check_partition_gate(&doc)
            .unwrap_err()
            .contains("remerge_secs_worst"));
        let smoke = report("partition", partition_rows(0.99, 10.0))
            .replace("\"smoke\": false", "\"smoke\": true");
        let doc = validate_report_str(&smoke).unwrap();
        assert!(check_partition_gate(&doc).unwrap_err().contains("smoke"));
    }

    fn byz_row(k: u64, damage: f64) -> Row {
        Row::new(
            "byzantine",
            format!("byz={k}"),
            "hvdb",
            vec![
                ("delivery".into(), 0.99 - damage * k as f64),
                ("damage_per_node".into(), damage),
            ],
        )
    }

    #[test]
    fn byzantine_gate_bounds_damage_per_node() {
        let ok = report("byzantine", vec![byz_row(0, 0.0), byz_row(2, 0.01)]);
        let doc = validate_report_str(&ok).unwrap();
        assert_eq!(check_byzantine_gate(&doc).expect("passes").len(), 1);
        // One row over the ceiling fails.
        let bad = report(
            "byzantine",
            vec![
                byz_row(0, 0.0),
                byz_row(1, 0.01),
                byz_row(4, BYZANTINE_DAMAGE_PER_NODE + 0.01),
            ],
        );
        let doc = validate_report_str(&bad).unwrap();
        assert!(check_byzantine_gate(&doc).unwrap_err().contains("byz=4"));
        // Missing k=0 control fails loudly.
        let none = report("byzantine", vec![byz_row(2, 0.01)]);
        let doc = validate_report_str(&none).unwrap();
        assert!(check_byzantine_gate(&doc).unwrap_err().contains("byz=0"));
        // No gated rows at all fails (k=0 alone proves nothing).
        let only_control = report("byzantine", vec![byz_row(0, 0.0)]);
        let doc = validate_report_str(&only_control).unwrap();
        assert!(check_byzantine_gate(&doc).is_err());
        // Smoke refused.
        let smoke = report("byzantine", vec![byz_row(0, 0.0), byz_row(2, 0.01)])
            .replace("\"smoke\": false", "\"smoke\": true");
        let doc = validate_report_str(&smoke).unwrap();
        assert!(check_byzantine_gate(&doc).unwrap_err().contains("smoke"));
    }

    #[test]
    fn unicode_and_escapes_round_trip() {
        let s = report(
            "üñí-ödé \"x\"\n",
            vec![Row::new("a", "b", "c", vec![("m".into(), 1.5)])],
        );
        let doc = validate_report_str(&s).expect("valid");
        let Json::Obj(fields) = &doc else { panic!() };
        let (_, Json::Str(name)) = &fields[0] else {
            panic!()
        };
        assert_eq!(name, "üñí-ödé \"x\"\n");
    }
}
