//! The scenario registry: every experiment of the paper as a named,
//! declarative entry behind one CLI.
//!
//! Each [`ScenarioDef`] reproduces one figure or claim of the paper
//! (c1–c4 for the §5/§2 claims, f1–f6 for the figures, a1 for the design
//! ablations, plus the `seed` perf baseline). A scenario executes either
//! as declarative [`SweepSpec`]s — `(workload-point × protocol × seed)`
//! jobs fanned out over the rayon runner — or as a bespoke structural
//! audit for the experiments that measure graph properties rather than
//! packet traffic. Both produce the same uniform [`Row`]s and serialize
//! to `BENCH_<scenario>.json`, so the perf trajectory accumulates one
//! file per scenario per run.
//!
//! Every scenario also supports a *smoke* mode ([`RunOpts::smoke`]):
//! shrunk inputs and ~1-second simulations that exercise the full
//! pipeline in milliseconds. The test suite runs every registered
//! scenario in smoke mode and validates the emitted JSON.

use crate::report::{Json, Row, ScenarioReport};
use crate::runner::{
    average, profile_json, run_hvdb_tweaked, run_one, run_one_instrumented, run_par_flood,
    run_par_hvdb, run_par_hvdb_timeline, sample_serial, timeline_json, Proto, RunDetail,
    TimelineSample, TrafficProfile,
};
use crate::workload::{metrics_of, MobilityKind, RunMetrics, Scenario, Workload};
use hvdb_core::{
    build_model, build_region_cube, routes::AdvertisedRoute, routes::QosMetrics,
    DesignationCriterion, FrameBytes, HvdbConfig, HvdbProtocol, QosRequirement, RouteTable,
    SessionManager,
};
use hvdb_geo::{Aabb, Hid, Hnid, Point, Vec2};
use hvdb_hypercube::routing::{diameter, local_routes};
use hvdb_hypercube::{label, pair_connectivity, IncompleteHypercube};
use hvdb_sim::{
    gini, jain_fairness, max_mean_ratio, sim_sec_per_wall_sec, ByzantineMode, FaultEvent,
    FaultKind, FaultPlan, NodeId, RadioConfig, SimConfig, SimDuration, SimRng, SimTime, Simulator,
    Stationary,
};
use rayon::prelude::*;

/// Options shared by every scenario execution.
#[derive(Debug, Clone)]
pub struct RunOpts {
    /// Shrink everything to a ~1-second pipeline check.
    pub smoke: bool,
    /// Override the seed set of declarative sweeps.
    pub seeds: Option<Vec<u64>>,
    /// Worker threads for parallel-engine arms (`--threads`, default 1).
    /// Recorded in the report; deterministic metrics do not depend on it.
    pub threads: usize,
}

impl Default for RunOpts {
    fn default() -> Self {
        RunOpts {
            smoke: false,
            seeds: None,
            threads: 1,
        }
    }
}

/// One declarative sweep: an axis of workload points, run under a set of
/// protocols, averaged over seeds.
pub struct SweepSpec {
    /// Axis name (becomes [`Row::sweep`]).
    pub axis: &'static str,
    /// `(label, workload)` points along the axis.
    pub points: Vec<(String, Workload)>,
    /// Protocols to compare at every point.
    pub protos: Vec<Proto>,
    /// Seeds averaged per `(point, protocol)`.
    pub seeds: Vec<u64>,
}

/// How a scenario executes.
pub enum Exec {
    /// Declarative protocol-comparison sweeps through the rayon runner.
    Sweeps(fn(&RunOpts) -> Vec<SweepSpec>),
    /// Bespoke logic (structural audits, config ablations) producing rows
    /// directly.
    Custom(fn(&RunOpts) -> Vec<Row>),
    /// Bespoke logic that additionally emits the scenario's declarative
    /// workload block — the serialized [`FaultPlan`]
    /// ([`fault_plan_json`]) — into the report, so a committed
    /// `BENCH_<scenario>.json` records exactly which faults produced its
    /// numbers.
    CustomWithPlan(fn(&RunOpts) -> (Vec<Row>, Json)),
    /// Bespoke logic returning the full observability bundle: rows plus
    /// any of the optional report blocks (workload, deterministic
    /// `timeline`, wall-clock `profile`).
    Detailed(fn(&RunOpts) -> CustomOut),
}

/// Everything a [`Exec::Detailed`] scenario hands back to
/// [`run_scenario`]: the rows plus the optional report blocks.
#[derive(Default)]
pub struct CustomOut {
    /// The measurements.
    pub rows: Vec<Row>,
    /// Declarative workload block (e.g. the serialized fault plan).
    pub workload: Option<Json>,
    /// Deterministic sim-time metrics timeline.
    pub timeline: Option<Json>,
    /// Non-deterministic wall-clock engine profile.
    pub profile: Option<Json>,
}

/// A registered experiment.
pub struct ScenarioDef {
    /// Registry name (`BENCH_<name>.json`).
    pub name: &'static str,
    /// The paper figure / claim reproduced.
    pub figure: &'static str,
    /// One-line description.
    pub summary: &'static str,
    /// Execution recipe.
    pub exec: Exec,
}

/// All registered scenarios, in presentation order.
pub fn registry() -> Vec<ScenarioDef> {
    vec![
        ScenarioDef {
            name: "seed",
            figure: "§6 baseline",
            summary: "HVDB vs all four baselines on the paper's 200-node 800x800 scenario",
            exec: Exec::Sweeps(sweeps_seed),
        },
        ScenarioDef {
            name: "loss",
            figure: "robustness",
            summary: "delivery ratio vs frame-loss rate 0-30% across seeds (soft-state control-plane regression gate)",
            exec: Exec::Custom(custom_loss),
        },
        ScenarioDef {
            name: "scale",
            figure: "north-star",
            summary: "node-count sweep 100-20000 at constant density: delivery, latency, per-node control bytes + memory; large-N points and the engine-threads arm run HVDB on the sharded parallel engine (CI trajectory gate)",
            exec: Exec::Detailed(custom_scale),
        },
        ScenarioDef {
            name: "perf",
            figure: "north-star",
            summary: "engine wall-clock throughput: shared-frame vs per-receiver-clone delivery on byte-identical workloads (events/s gate)",
            exec: Exec::Detailed(custom_perf),
        },
        ScenarioDef {
            name: "overhead",
            figure: "roadmap c4",
            summary: "control frames/s vs churn rate at fixed loss, adaptive vs fixed-rate refresh (CI quiet-phase gate)",
            exec: Exec::Custom(custom_overhead),
        },
        ScenarioDef {
            name: "traffic",
            figure: "§5 QoS / C3 load",
            summary: "offered-load sweep up the saturation knee: goodput, p50/p99/p999 latency, jitter — HVDB vs flooding/shared-tree (knee + p99 CI gate)",
            exec: Exec::Custom(custom_traffic),
        },
        ScenarioDef {
            name: "partition",
            figure: "robustness",
            summary: "network split into two islands with later heal: reachable-delivery floor during the split, head-hierarchy re-merge time after it (CI fault-plane gate)",
            exec: Exec::Detailed(custom_partition),
        },
        ScenarioDef {
            name: "byzantine",
            figure: "robustness",
            summary: "misbehaving nodes (selective forwarding, stale replay, bogus CH candidacy) at k=0-4: delivery damage per adversarial node (CI fault-plane gate)",
            exec: Exec::CustomWithPlan(custom_byzantine),
        },
        ScenarioDef {
            name: "c1-availability",
            figure: "§5 claim 1",
            summary: "disjoint logical routes: structure under damage, QoS failover, delivery under CH fail-stop",
            exec: Exec::Custom(custom_c1),
        },
        ScenarioDef {
            name: "c2-diameter",
            figure: "§2.1/§5 claim 2",
            summary: "small diameter: logical distances across dimensions, occupancy and horizons",
            exec: Exec::Custom(custom_c2),
        },
        ScenarioDef {
            name: "c3-load",
            figure: "§5 claim 3",
            summary: "load balancing: per-node transmitted-bytes distribution vs the shared-tree bottleneck",
            exec: Exec::Custom(custom_c3),
        },
        ScenarioDef {
            name: "c4-scalability",
            figure: "§1/§2.2 claim 4",
            summary: "control overhead vs network size, group count and group size (HVDB/SPBM/DSM)",
            exec: Exec::Sweeps(sweeps_c4),
        },
        ScenarioDef {
            name: "f1-model",
            figure: "Fig. 1",
            summary: "three-tier model construction: backbone statistics and cluster stability",
            exec: Exec::Custom(custom_f1),
        },
        ScenarioDef {
            name: "f2-grid",
            figure: "Fig. 2",
            summary: "the 8x8-VC worked example at full and partial occupancy",
            exec: Exec::Custom(custom_f2),
        },
        ScenarioDef {
            name: "f3-hypercube",
            figure: "Fig. 3",
            summary: "the 4-d hypercube with grid links: routes of node 1000, structural properties",
            exec: Exec::Custom(custom_f3),
        },
        ScenarioDef {
            name: "f4-routes",
            figure: "Fig. 4",
            summary: "proactive route maintenance: table completeness, beacon cost, failure recovery",
            exec: Exec::Custom(custom_f4),
        },
        ScenarioDef {
            name: "f5-membership",
            figure: "Fig. 5",
            summary: "summary-based membership update overhead vs size, groups and members",
            exec: Exec::Sweeps(sweeps_f5),
        },
        ScenarioDef {
            name: "f6-routing",
            figure: "Fig. 6",
            summary: "end-to-end multicast: all protocols across size and mobility",
            exec: Exec::Sweeps(sweeps_f6),
        },
        ScenarioDef {
            name: "a1-ablations",
            figure: "DESIGN §4",
            summary: "ablations: horizon k, dimension, tree caching, designated-broadcaster criterion",
            exec: Exec::Custom(custom_a1),
        },
    ]
}

/// Looks a scenario up by name.
pub fn find(name: &str) -> Option<ScenarioDef> {
    registry().into_iter().find(|s| s.name == name)
}

/// Executes a scenario and packages the report.
pub fn run_scenario(def: &ScenarioDef, opts: &RunOpts) -> ScenarioReport {
    let out = match def.exec {
        Exec::Sweeps(build) => CustomOut {
            rows: run_sweeps(build(opts), opts),
            ..CustomOut::default()
        },
        Exec::Custom(f) => CustomOut {
            rows: f(opts),
            ..CustomOut::default()
        },
        Exec::CustomWithPlan(f) => {
            let (rows, workload) = f(opts);
            CustomOut {
                rows,
                workload: Some(workload),
                ..CustomOut::default()
            }
        }
        Exec::Detailed(f) => f(opts),
    };
    ScenarioReport {
        scenario: def.name.into(),
        figure: def.figure.into(),
        summary: def.summary.into(),
        smoke: opts.smoke,
        threads: opts.threads.max(1),
        workload: out.workload,
        timeline: out.timeline,
        profile: out.profile,
        rows: out.rows,
    }
}

/// Runs declarative sweeps: flattens every `(spec, point, proto, seed)`
/// into one job list, fans it out over rayon (each simulation stays
/// single-threaded and deterministic), and averages per `(point, proto)`.
fn run_sweeps(mut specs: Vec<SweepSpec>, opts: &RunOpts) -> Vec<Row> {
    for spec in &mut specs {
        if let Some(seeds) = &opts.seeds {
            spec.seeds = seeds.clone();
        }
        if opts.smoke {
            spec.points.truncate(2);
            for (_, w) in &mut spec.points {
                *w = w.smoke();
            }
            // Shrink the default seed set, but never silently discard an
            // explicit --seeds list.
            if opts.seeds.is_none() {
                spec.seeds.truncate(1);
            }
        }
    }
    // Flatten into jobs; remember each result group's row coordinates.
    struct Group {
        spec: usize,
        point: usize,
        proto: Proto,
        start: usize,
        len: usize,
    }
    let mut jobs: Vec<(Workload, Proto)> = Vec::new();
    let mut groups: Vec<Group> = Vec::new();
    for (si, spec) in specs.iter().enumerate() {
        for (pi, (_, w)) in spec.points.iter().enumerate() {
            for &proto in &spec.protos {
                groups.push(Group {
                    spec: si,
                    point: pi,
                    proto,
                    start: jobs.len(),
                    len: spec.seeds.len(),
                });
                for &seed in &spec.seeds {
                    jobs.push((Workload { seed, ..w.clone() }, proto));
                }
            }
        }
    }
    let results: Vec<RunMetrics> = jobs
        .par_iter()
        .map(|(w, proto)| run_one(*proto, &w.build()))
        .collect();
    groups
        .iter()
        .map(|g| {
            let spec = &specs[g.spec];
            let m = average(&results[g.start..g.start + g.len]);
            Row::new(
                spec.axis,
                spec.points[g.point].0.clone(),
                g.proto.name(),
                m.metric_pairs(),
            )
        })
        .collect()
}

// ---------------------------------------------------------------------
// Declarative sweeps
// ---------------------------------------------------------------------

/// The paper's §6 evaluation scenario: 200 nodes on 800x800 m, 8x8 VCs,
/// dimension 4 — the baseline every future optimisation is measured
/// against.
fn paper_workload() -> Workload {
    Workload {
        side: 800.0,
        nodes: 200,
        vc_side: 8,
        dim: 4,
        range: 250.0,
        ..Workload::default()
    }
}

fn sweeps_seed(_opts: &RunOpts) -> Vec<SweepSpec> {
    vec![SweepSpec {
        axis: "paper-scenario",
        points: vec![("200-nodes-800x800".into(), paper_workload())],
        protos: Proto::ALL.to_vec(),
        seeds: vec![1, 2, 3],
    }]
}

fn c4_base() -> Workload {
    Workload {
        packets_per_group: 2,
        warmup: SimDuration::from_secs(90),
        traffic_window: SimDuration::from_secs(20),
        cooldown: SimDuration::from_secs(20),
        ..Workload::default()
    }
}

fn sweeps_c4(_opts: &RunOpts) -> Vec<SweepSpec> {
    let size_point = |nodes: usize| {
        (
            format!("nodes={nodes}"),
            Workload {
                nodes,
                side: (nodes as f64 * 8533.0).sqrt(),
                vc_side: if nodes >= 1000 { 12 } else { 8 },
                ..c4_base()
            },
        )
    };
    vec![
        SweepSpec {
            axis: "network-size",
            points: vec![size_point(250), size_point(500)],
            protos: vec![Proto::Hvdb, Proto::Spbm, Proto::Dsm],
            seeds: vec![5, 6],
        },
        // DSM's N^2 location flood makes 1000-node runs prohibitively slow
        // to *simulate* (the overhead it would generate is the point), so
        // the largest size drops DSM rather than waiting on it.
        SweepSpec {
            axis: "network-size-large",
            points: vec![size_point(1000)],
            protos: vec![Proto::Hvdb, Proto::Spbm],
            seeds: vec![5, 6],
        },
        SweepSpec {
            axis: "group-count",
            points: [2usize, 8, 24]
                .into_iter()
                .map(|groups| {
                    (
                        format!("groups={groups}"),
                        Workload {
                            nodes: 400,
                            groups,
                            ..c4_base()
                        },
                    )
                })
                .collect(),
            protos: vec![Proto::Hvdb, Proto::Spbm, Proto::Dsm],
            seeds: vec![5, 6],
        },
        SweepSpec {
            axis: "members-per-group",
            points: [10usize, 50, 150]
                .into_iter()
                .map(|members| {
                    (
                        format!("members={members}"),
                        Workload {
                            nodes: 400,
                            members_per_group: members,
                            ..c4_base()
                        },
                    )
                })
                .collect(),
            protos: vec![Proto::Hvdb, Proto::Spbm, Proto::Dsm],
            seeds: vec![5, 6],
        },
    ]
}

fn membership_workload() -> Workload {
    Workload {
        packets_per_group: 0, // membership machinery only
        warmup: SimDuration::from_secs(100),
        traffic_window: SimDuration::from_secs(1),
        cooldown: SimDuration::from_secs(1),
        ..Workload::default()
    }
}

fn sweeps_f5(_opts: &RunOpts) -> Vec<SweepSpec> {
    let protos = vec![Proto::Hvdb, Proto::Spbm, Proto::Dsm];
    vec![
        SweepSpec {
            axis: "network-size",
            points: [100usize, 200, 400]
                .into_iter()
                .map(|nodes| {
                    (
                        format!("nodes={nodes}"),
                        Workload {
                            nodes,
                            side: (nodes as f64 * 8000.0).sqrt(), // constant density
                            ..membership_workload()
                        },
                    )
                })
                .collect(),
            protos: protos.clone(),
            seeds: vec![1, 2, 3],
        },
        SweepSpec {
            axis: "group-count",
            points: [1usize, 4, 8, 16]
                .into_iter()
                .map(|groups| {
                    (
                        format!("groups={groups}"),
                        Workload {
                            groups,
                            ..membership_workload()
                        },
                    )
                })
                .collect(),
            protos: protos.clone(),
            seeds: vec![1, 2, 3],
        },
        SweepSpec {
            axis: "members-per-group",
            points: [5usize, 20, 60, 120]
                .into_iter()
                .map(|members| {
                    (
                        format!("members={members}"),
                        Workload {
                            members_per_group: members,
                            ..membership_workload()
                        },
                    )
                })
                .collect(),
            protos,
            seeds: vec![1, 2, 3],
        },
    ]
}

fn sweeps_f6(_opts: &RunOpts) -> Vec<SweepSpec> {
    vec![
        SweepSpec {
            axis: "default",
            points: vec![("300-nodes-static".into(), Workload::default())],
            protos: Proto::ALL.to_vec(),
            seeds: vec![11, 12, 13],
        },
        SweepSpec {
            axis: "network-size",
            points: [150usize, 300, 600]
                .into_iter()
                .map(|nodes| {
                    (
                        format!("nodes={nodes}"),
                        Workload {
                            nodes,
                            side: (nodes as f64 * 8533.0).sqrt(),
                            ..Workload::default()
                        },
                    )
                })
                .collect(),
            protos: Proto::ALL.to_vec(),
            seeds: vec![11, 12, 13],
        },
        SweepSpec {
            axis: "mobility",
            points: [
                ("static", MobilityKind::Static),
                ("speed=0.5-2", MobilityKind::Waypoint(0.5, 2.0)),
                ("speed=2-8", MobilityKind::Waypoint(2.0, 8.0)),
                ("speed=8-15", MobilityKind::Waypoint(8.0, 15.0)),
            ]
            .into_iter()
            .map(|(name, mobility)| {
                (
                    name.to_string(),
                    Workload {
                        mobility,
                        ..Workload::default()
                    },
                )
            })
            .collect(),
            protos: vec![Proto::Hvdb, Proto::Flooding, Proto::Spbm],
            seeds: vec![11, 12, 13],
        },
    ]
}

// ---------------------------------------------------------------------
// Custom scenarios (structural audits and config ablations)
// ---------------------------------------------------------------------

/// The `loss` robustness sweep: delivery ratio vs independent frame-loss
/// rate, reported as the per-point mean *and worst seed* — the first
/// scenario designed to regression-test robustness rather than raw
/// throughput. CI gates on `delivery_worst` at
/// [`crate::validate::LOSS_GATE_POINT`] staying above
/// [`crate::validate::LOSS_DELIVERY_FLOOR`].
fn custom_loss(opts: &RunOpts) -> Vec<Row> {
    // The paper's §6 geometry at a density where the backbone is fully
    // occupied; small payload bursts so the measurement tracks the
    // control plane's health, not queueing.
    let base = Workload {
        side: 800.0,
        nodes: 120,
        vc_side: 8,
        dim: 4,
        range: 250.0,
        groups: 2,
        members_per_group: 8,
        packets_per_group: 12,
        warmup: SimDuration::from_secs(100),
        traffic_window: SimDuration::from_secs(30),
        cooldown: SimDuration::from_secs(20),
        enhanced_fraction: 1.0,
        ..Workload::default()
    };
    let losses: Vec<f64> = if opts.smoke {
        vec![0.0, 0.15]
    } else {
        vec![0.0, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30]
    };
    // Seed 7 was PR 1's known-worst draw; it stays in the set on purpose.
    let mut seeds = opts.seeds.clone().unwrap_or_else(|| vec![1, 2, 3, 7]);
    if opts.smoke && opts.seeds.is_none() {
        seeds.truncate(1);
    }
    let jobs: Vec<(f64, u64)> = losses
        .iter()
        .flat_map(|&loss| seeds.iter().map(move |&seed| (loss, seed)))
        .collect();
    let results: Vec<(RunMetrics, hvdb_core::Counters)> = jobs
        .par_iter()
        .map(|&(loss, seed)| {
            let w = Workload {
                loss_prob: loss,
                seed,
                ..base.clone()
            };
            let w = if opts.smoke { w.smoke() } else { w };
            let (m, detail) = run_one_instrumented(Proto::Hvdb, &w.build());
            (m, detail.hvdb_counters.unwrap_or_default())
        })
        .collect();
    losses
        .iter()
        .enumerate()
        .map(|(i, &loss)| {
            let chunk = &results[i * seeds.len()..(i + 1) * seeds.len()];
            let mean = average(&chunk.iter().map(|(m, _)| *m).collect::<Vec<_>>());
            let worst = chunk
                .iter()
                .map(|(m, _)| m.delivery)
                .fold(f64::INFINITY, f64::min);
            let sum = |f: &dyn Fn(&hvdb_core::Counters) -> u64| -> f64 {
                chunk.iter().map(|(_, c)| f(c)).sum::<u64>() as f64 / chunk.len() as f64
            };
            let mut metrics = vec![
                ("delivery".into(), mean.delivery),
                ("delivery_worst".into(), worst),
                ("latency_ms".into(), mean.latency * 1e3),
                ("control_msgs".into(), mean.control_msgs as f64),
                ("control_bytes".into(), mean.control_bytes as f64),
            ];
            metrics.push(("refresh_broadcasts".into(), sum(&|c| c.refresh_broadcasts)));
            metrics.push(("stale_suppressed".into(), sum(&|c| c.stale_suppressed)));
            metrics.push(("soft_expired".into(), sum(&|c| c.soft_expired)));
            Row::new(
                "frame-loss",
                format!("loss={loss}"),
                Proto::Hvdb.name(),
                metrics,
            )
        })
        .collect()
}

/// Serializes a [`FaultPlan`] as the report's `workload` block: an
/// object with one `fault_plan` array, one self-describing object per
/// scheduled event. Committed `BENCH_partition.json` /
/// `BENCH_byzantine.json` files thereby record exactly which faults
/// produced their numbers.
pub fn fault_plan_json(plan: &FaultPlan) -> Json {
    Json::Obj(vec![(
        "fault_plan".into(),
        Json::Arr(plan.events().iter().map(fault_event_json).collect()),
    )])
}

fn fault_event_json(ev: &FaultEvent) -> Json {
    let mut fields = vec![("at_us".to_string(), Json::Num(ev.at.0 as f64))];
    let mut kind = |k: &str| fields.push(("kind".into(), Json::Str(k.into())));
    match &ev.kind {
        FaultKind::Fail(node) => {
            kind("fail");
            fields.push(("node".into(), Json::Num(node.0 as f64)));
        }
        FaultKind::Recover(node) => {
            kind("recover");
            fields.push(("node".into(), Json::Num(node.0 as f64)));
        }
        FaultKind::Partition(groups) => {
            kind("partition");
            fields.push((
                "islands".into(),
                Json::Arr(
                    groups
                        .iter()
                        .map(|g| Json::Arr(g.iter().map(|n| Json::Num(n.0 as f64)).collect()))
                        .collect(),
                ),
            ));
        }
        FaultKind::Heal => kind("heal"),
        FaultKind::FailRegion { center, radius } => {
            kind("fail-region");
            fields.push(("x".into(), Json::Num(center.x)));
            fields.push(("y".into(), Json::Num(center.y)));
            fields.push(("radius".into(), Json::Num(*radius)));
        }
        FaultKind::Byzantine { node, mode } => {
            kind("byzantine");
            fields.push(("node".into(), Json::Num(node.0 as f64)));
            let (name, param, value) = match mode {
                ByzantineMode::SelectiveForward { drop_prob } => {
                    ("selective-forward", "drop_prob", *drop_prob)
                }
                ByzantineMode::ReplayStale { delay } => {
                    ("replay-stale", "delay_us", delay.0 as f64)
                }
                ByzantineMode::BogusCandidacy { drop_prob } => {
                    ("bogus-candidacy", "drop_prob", *drop_prob)
                }
            };
            fields.push(("mode".into(), Json::Str(name.into())));
            fields.push((param.into(), Json::Num(value)));
        }
        FaultKind::ClockSkew { node, skew_us } => {
            kind("clock-skew");
            fields.push(("node".into(), Json::Num(node.0 as f64)));
            fields.push(("skew_us".into(), Json::Num(*skew_us as f64)));
        }
        FaultKind::PositionError { node, error } => {
            kind("position-error");
            fields.push(("node".into(), Json::Num(node.0 as f64)));
            fields.push(("ex".into(), Json::Num(error.x)));
            fields.push(("ey".into(), Json::Num(error.y)));
        }
    }
    Json::Obj(fields)
}

/// One seed's `partition` measurements (times in seconds, heads as
/// end-of-phase census counts).
struct PartitionRun {
    heads_pre: f64,
    heads_during: f64,
    heads_end: f64,
    pre_delivery: f64,
    part_delivery: f64,
    part_reachable: f64,
    part_reachable_steady: f64,
    healed_delivery: f64,
    drops_partitioned: f64,
    remerge_secs: f64,
}

/// The `partition` scenario: the network splits into two geographic
/// islands (west/east halves of the area, the radio-silence line a
/// jammed or shadowed corridor would produce) mid-traffic and heals
/// later. One continuous HVDB run per
/// seed, segmented so the cluster-head census can be probed: pre-split
/// census `H0`, census at the heal, then a probe every few seconds until
/// the census returns to the pre-split level (re-merge time). Delivery
/// is attributed per traffic item to its phase; during the split it is
/// additionally restricted to *reachable* (same-island) receivers — raw
/// delivery is dragged down by construction because cross-island
/// receivers are physically unreachable. Reachable delivery is reported
/// both over the whole split (`delivery_reachable`, which includes the
/// re-election transient right after the cut, when each island is still
/// re-growing its half of the backbone) and over the *steady* tail
/// (items sent once the islands have had the settle interval to
/// re-converge) — the CI floor
/// ([`crate::validate::PARTITION_REACHABLE_DELIVERY_FLOOR`]) gates the
/// steady number, matching the paper's claim about operation *within* a
/// partition rather than about cut-transient losses.
///
/// The report additionally carries a `timeline` block sampled from the
/// first seed at the probe cadence: the head-census spike at the split
/// and its decay after the heal become a replayable time-series, and the
/// re-merge instant is independently derivable from it (the validator
/// cross-checks the derived value against `remerge_secs_probe`).
fn custom_partition(opts: &RunOpts) -> CustomOut {
    // Full run: split at 140 s (20 s into traffic), heal at 220 s, 100 s
    // of probe/cool-down after the heal. Smoke compresses everything to
    // a ~1-second pipeline check.
    let (nodes, packets, warmup, window, cooldown, split_off, heal_off, probe, settle) =
        if opts.smoke {
            (
                40,
                3,
                SimDuration::from_millis(400),
                SimDuration::from_millis(300),
                SimDuration::from_millis(300),
                SimDuration::from_millis(100),
                SimDuration::from_millis(200),
                SimDuration::from_millis(100),
                SimDuration::ZERO,
            )
        } else {
            (
                200,
                40,
                SimDuration::from_secs(120),
                SimDuration::from_secs(160),
                SimDuration::from_secs(40),
                SimDuration::from_secs(20),
                SimDuration::from_secs(100),
                SimDuration::from_secs(5),
                SimDuration::from_secs(30),
            )
        };
    let base = Workload {
        side: 800.0,
        nodes,
        vc_side: 8,
        dim: 4,
        range: 250.0,
        groups: 2,
        members_per_group: 10,
        packets_per_group: packets,
        warmup,
        traffic_window: window,
        cooldown,
        enhanced_fraction: 1.0,
        ..Workload::default()
    };
    let split_at = SimTime(warmup.0 + split_off.0);
    let heal_at = SimTime(warmup.0 + heal_off.0);
    let mut seeds = opts.seeds.clone().unwrap_or_else(|| vec![1, 2, 3]);
    if opts.smoke && opts.seeds.is_none() {
        seeds.truncate(1);
    }
    let boundary = base.side / 2.0;
    let first_seed = seeds[0];
    let runs: Vec<(PartitionRun, FaultPlan, Vec<TimelineSample>)> = seeds
        .par_iter()
        .map(|&seed| {
            let w = Workload {
                seed,
                ..base.clone()
            };
            let scenario = w.build();
            let mut sim: Simulator<FrameBytes> =
                Simulator::new(scenario.sim.clone(), scenario.hvdb_mobility());
            // Geographic west/east islands from the seed's actual (static)
            // placement: the boundary falls on a VC-grid edge, so each
            // island keeps whole virtual cells and an intact half of the
            // backbone — only cross-boundary links go silent.
            let west: Vec<NodeId> = (0..nodes)
                .map(|i| NodeId(i as u32))
                .filter(|&n| sim.world().position(n).x < boundary)
                .collect();
            let east: Vec<NodeId> = (0..nodes)
                .map(|i| NodeId(i as u32))
                .filter(|&n| sim.world().position(n).x >= boundary)
                .collect();
            let plan = FaultPlan::new()
                .partition(split_at, vec![west.clone(), east])
                .heal(heal_at);
            sim.inject_plan(&plan);
            let mut proto = HvdbProtocol::new(
                scenario.hvdb.clone(),
                &scenario.members,
                scenario.traffic.clone(),
                scenario.group_events.clone(),
            );
            // One stepped drive at the probe cadence from t=0 to the end:
            // every phase constant is a probe multiple by construction, so
            // the stepped horizons hit `split_at`/`heal_at` exactly and the
            // event schedule (hence every statistic) is identical to a
            // single continuous run. Each step doubles as a timeline sample
            // point (recorded for the first seed) and, after the heal, as a
            // census probe: the re-merge instant is the first probe where
            // the head count falls back to the pre-split level (+10%
            // tolerance — soft state may settle one or two heads off). No
            // return within the horizon reports the full horizon, which
            // the re-merge budget gate then fails.
            let sample_timeline = seed == first_seed;
            let mut samples = Vec::new();
            let mut heads_pre = 0usize;
            let mut heads_during = 0usize;
            let mut remerge = None;
            let mut t = SimTime::ZERO;
            while t < scenario.until {
                t = SimTime((t.0 + probe.0).min(scenario.until.0));
                sim.run(&mut proto, t);
                let heads = proto.cluster_heads().len();
                if t == split_at {
                    heads_pre = heads;
                }
                if t == heal_at {
                    heads_during = heads;
                }
                if remerge.is_none() && t > heal_at && heads <= heads_pre + heads_pre / 10 {
                    remerge = Some((t.0 - heal_at.0) as f64 / 1e6);
                }
                if sample_timeline {
                    let mem = (sim.world().memory_bytes() + proto.memory_bytes()) as f64
                        / nodes.max(1) as f64;
                    samples.push(sample_serial(&sim, heads as u64, mem));
                }
            }
            let remerge_secs = remerge.unwrap_or((scenario.until.0 - heal_at.0) as f64 / 1e6);
            // Attribute each traffic item's deliveries to its phase.
            // Membership is static here (no churn), so ground truth is
            // the scripted initial membership.
            let in_west: Vec<bool> = (0..nodes)
                .map(|i| west.contains(&NodeId(i as u32)))
                .collect();
            let same_island = |a: NodeId, b: NodeId| in_west[a.0 as usize] == in_west[b.0 as usize];
            let mut sums = [(0u64, 0u64); 3]; // (delivered, expected) per phase
            let mut reach = (0u64, 0u64);
            let mut reach_steady = (0u64, 0u64);
            let steady_from = SimTime(split_at.0 + settle.0);
            for (idx, item) in scenario.traffic.iter().enumerate() {
                let delivered = sim.stats().receivers_of(idx as u64 + 1);
                let expected: Vec<NodeId> = scenario
                    .members
                    .iter()
                    .filter(|(n, g)| *g == item.group && *n != item.src)
                    .map(|(n, _)| *n)
                    .collect();
                let phase = if item.at < split_at {
                    0
                } else if item.at < heal_at {
                    1
                } else {
                    2
                };
                let got = expected.iter().filter(|n| delivered.contains(n)).count() as u64;
                sums[phase].0 += got;
                sums[phase].1 += expected.len() as u64;
                if phase == 1 {
                    let reachable: Vec<NodeId> = expected
                        .iter()
                        .copied()
                        .filter(|n| same_island(*n, item.src))
                        .collect();
                    let got = reachable.iter().filter(|n| delivered.contains(n)).count() as u64;
                    reach.1 += reachable.len() as u64;
                    reach.0 += got;
                    if item.at >= steady_from {
                        reach_steady.1 += reachable.len() as u64;
                        reach_steady.0 += got;
                    }
                }
            }
            let ratio = |(d, e): (u64, u64)| if e == 0 { 1.0 } else { d as f64 / e as f64 };
            let run = PartitionRun {
                heads_pre: heads_pre as f64,
                heads_during: heads_during as f64,
                heads_end: proto.cluster_heads().len() as f64,
                pre_delivery: ratio(sums[0]),
                part_delivery: ratio(sums[1]),
                part_reachable: ratio(reach),
                part_reachable_steady: ratio(reach_steady),
                healed_delivery: ratio(sums[2]),
                drops_partitioned: sim.stats().drops_partitioned as f64,
                remerge_secs,
            };
            (run, plan, samples)
        })
        .collect();
    // The workload block records the first seed's plan (islands are
    // placement-derived, so the exact rosters vary per seed); the
    // timeline likewise carries the first seed's sample series.
    let plan = runs[0].1.clone();
    let samples = runs[0].2.clone();
    let runs: Vec<PartitionRun> = runs.into_iter().map(|(r, _, _)| r).collect();
    let n = runs.len().max(1) as f64;
    let mean = |f: &dyn Fn(&PartitionRun) -> f64| runs.iter().map(f).sum::<f64>() / n;
    let worst_min =
        |f: &dyn Fn(&PartitionRun) -> f64| runs.iter().map(f).fold(f64::INFINITY, f64::min);
    let worst_max =
        |f: &dyn Fn(&PartitionRun) -> f64| runs.iter().map(f).fold(f64::NEG_INFINITY, f64::max);
    let rows = vec![
        Row::new(
            "partition",
            "phase=pre",
            Proto::Hvdb.name(),
            vec![
                ("heads".into(), mean(&|r| r.heads_pre)),
                ("delivery".into(), mean(&|r| r.pre_delivery)),
            ],
        ),
        Row::new(
            "partition",
            "phase=partition",
            Proto::Hvdb.name(),
            vec![
                ("heads".into(), mean(&|r| r.heads_during)),
                ("delivery".into(), mean(&|r| r.part_delivery)),
                ("delivery_reachable".into(), mean(&|r| r.part_reachable)),
                (
                    "delivery_reachable_steady".into(),
                    mean(&|r| r.part_reachable_steady),
                ),
                (
                    "delivery_reachable_steady_worst".into(),
                    worst_min(&|r| r.part_reachable_steady),
                ),
                ("drops_partitioned".into(), mean(&|r| r.drops_partitioned)),
            ],
        ),
        Row::new(
            "partition",
            "phase=healed",
            Proto::Hvdb.name(),
            vec![
                ("heads".into(), mean(&|r| r.heads_end)),
                ("delivery".into(), mean(&|r| r.healed_delivery)),
                ("remerge_secs".into(), mean(&|r| r.remerge_secs)),
                ("remerge_secs_worst".into(), worst_max(&|r| r.remerge_secs)),
            ],
        ),
    ];
    // Timeline annotations pin the instants a reader (and the validator's
    // cross-check) needs to re-derive the re-merge time from the series:
    // `heads_target` and `remerge_secs_probe` are the first seed's values,
    // matching the sampled series.
    let first = &runs[0];
    let heads_target = first.heads_pre + (first.heads_pre / 10.0).floor();
    let timeline = timeline_json(
        probe.0 as f64 / 1e6,
        vec![
            ("split_at_secs".into(), Json::Num(split_at.0 as f64 / 1e6)),
            ("heal_at_secs".into(), Json::Num(heal_at.0 as f64 / 1e6)),
            ("heads_target".into(), Json::Num(heads_target)),
            ("remerge_secs_probe".into(), Json::Num(first.remerge_secs)),
        ],
        &samples,
    );
    CustomOut {
        rows,
        workload: Some(fault_plan_json(&plan)),
        timeline: Some(timeline),
        profile: None,
    }
}

/// The `byzantine` scenario: k misbehaving nodes (selective forwarding,
/// stale-stamp replay, bogus CH candidacy, round-robin over evenly
/// spaced ids) start mid-warm-up, so the backbone the traffic window
/// sees has already absorbed them. Each k runs the standard HVDB recipe
/// over the seed set; the headline column is `damage_per_node` — mean
/// delivery lost per adversarial node relative to the k=0 control —
/// gated at [`crate::validate::BYZANTINE_DAMAGE_PER_NODE`].
fn custom_byzantine(opts: &RunOpts) -> (Vec<Row>, Json) {
    let base = Workload {
        side: 800.0,
        nodes: 200,
        vc_side: 8,
        dim: 4,
        range: 250.0,
        groups: 2,
        members_per_group: 10,
        packets_per_group: 30,
        warmup: SimDuration::from_secs(120),
        traffic_window: SimDuration::from_secs(60),
        cooldown: SimDuration::from_secs(40),
        enhanced_fraction: 1.0,
        ..Workload::default()
    };
    let base = if opts.smoke { base.smoke() } else { base };
    let onset = SimTime(base.warmup.0 / 2);
    let plan_for = |k: usize| -> FaultPlan {
        let mut plan = FaultPlan::new();
        for i in 0..k {
            let node = NodeId(((i + 1) * base.nodes / (k + 1)) as u32);
            let mode = match i % 3 {
                0 => ByzantineMode::SelectiveForward { drop_prob: 0.9 },
                1 => ByzantineMode::ReplayStale {
                    delay: SimDuration::from_secs(2),
                },
                _ => ByzantineMode::BogusCandidacy { drop_prob: 0.9 },
            };
            plan = plan.byzantine(onset, node, mode);
        }
        plan
    };
    let ks: Vec<usize> = if opts.smoke {
        vec![0, 1]
    } else {
        vec![0, 1, 2, 4]
    };
    let mut seeds = opts.seeds.clone().unwrap_or_else(|| vec![1, 2, 3]);
    if opts.smoke && opts.seeds.is_none() {
        seeds.truncate(1);
    }
    let jobs: Vec<(usize, u64)> = ks
        .iter()
        .flat_map(|&k| seeds.iter().map(move |&seed| (k, seed)))
        .collect();
    let results: Vec<(RunMetrics, RunDetail)> = jobs
        .par_iter()
        .map(|&(k, seed)| {
            let w = Workload {
                seed,
                faults: plan_for(k),
                ..base.clone()
            };
            run_one_instrumented(Proto::Hvdb, &w.build())
        })
        .collect();
    let per_k: Vec<(f64, f64)> = ks
        .iter()
        .enumerate()
        .map(|(i, _)| {
            let chunk = &results[i * seeds.len()..(i + 1) * seeds.len()];
            let mean = chunk.iter().map(|(m, _)| m.delivery).sum::<f64>() / chunk.len() as f64;
            let worst = chunk
                .iter()
                .map(|(m, _)| m.delivery)
                .fold(f64::INFINITY, f64::min);
            (mean, worst)
        })
        .collect();
    let d0 = per_k[0].0;
    let rows = ks
        .iter()
        .enumerate()
        .map(|(i, &k)| {
            let chunk = &results[i * seeds.len()..(i + 1) * seeds.len()];
            let (mean, worst) = per_k[i];
            let det = |f: &dyn Fn(&RunDetail) -> u64| -> f64 {
                chunk.iter().map(|(_, d)| f(d)).sum::<u64>() as f64 / chunk.len() as f64
            };
            let stale = chunk
                .iter()
                .map(|(_, d)| d.hvdb_counters.as_ref().map_or(0, |c| c.stale_suppressed))
                .sum::<u64>() as f64
                / chunk.len() as f64;
            let damage = if k == 0 { 0.0 } else { (d0 - mean) / k as f64 };
            Row::new(
                "byzantine",
                format!("byz={k}"),
                Proto::Hvdb.name(),
                vec![
                    ("delivery".into(), mean),
                    ("delivery_worst".into(), worst),
                    ("damage_per_node".into(), damage),
                    ("byzantine_dropped".into(), det(&|d| d.byzantine_dropped)),
                    ("byzantine_replayed".into(), det(&|d| d.byzantine_replayed)),
                    ("stale_suppressed".into(), stale),
                ],
            )
        })
        .collect();
    (
        rows,
        fault_plan_json(&plan_for(*ks.last().expect("ks non-empty"))),
    )
}

/// One detailed HVDB run's results: uniform metrics, protocol
/// counters, refresh-plane frames, simulated seconds, node count.
type DetailedRun = (RunMetrics, hvdb_core::Counters, u64, f64, usize);

/// One fully instrumented HVDB run: uniform metrics, protocol counters,
/// and the refresh-plane frame count (refresh-originated floods including
/// their relays — the traffic the adaptive controller saves). `tweak`
/// edits the derived config before the run (e.g. disabling the adaptive
/// controller for the fixed-rate comparison rows); the simulation itself
/// goes through the runner's one canonical HVDB recipe.
fn run_hvdb_detailed(
    scenario: &Scenario,
    tweak: &dyn Fn(&mut HvdbConfig),
) -> (RunMetrics, hvdb_core::Counters, u64) {
    let (metrics, detail) = run_hvdb_tweaked(scenario, tweak);
    (
        metrics,
        detail.hvdb_counters.unwrap_or_default(),
        detail.refresh_frames,
    )
}

/// VC grid side for a constant-density node sweep: the deployment area
/// grows with the node count while the radio range stays fixed, so the
/// VC grid must grow with it or VCs outgrow radio reach and the backbone
/// cannot form (same convention as the c4 sweep).
///
/// The historical 100–2000-node trajectory points keep their committed
/// grids (8 below 1000 nodes, 12 up to 2000) so the CI baselines stay
/// comparable across PRs; beyond 2000 the side is derived from the
/// geometry directly — enough cells that the VC *diagonal* stays inside
/// the 450 m radio range (cell ≤ 450/√2 ≈ 318 m): a member in one corner
/// of its VC must still hear a head elected in the opposite corner, or
/// the final local-delivery broadcast strands it (measured: a 363 m cell
/// at 20k nodes loses ~3% delivery to exactly this geometry, with zero
/// drops anywhere else in the pipeline). The bound also keeps
/// neighbouring VC centres comfortably within reach of each other.
/// Rounded up to the multiple of 4 the 2×2-region hypercube map
/// requires: 20k nodes get a 44-cell side; the 100k campaign point lands
/// at 92.
fn scaled_vc_side(nodes: usize) -> u16 {
    if nodes < 1000 {
        8
    } else if nodes <= 2000 {
        12
    } else {
        let side = (nodes as f64 * 8533.0).sqrt();
        ((side / 318.0).ceil() as u16).next_multiple_of(4)
    }
}

/// One scale-sweep run: uniform metrics, full engine instrumentation,
/// scenario horizon (simulated seconds), node count.
type ScaleRun = (RunMetrics, RunDetail, f64, usize);

/// Aggregates one node-count's runs into a `scale` report row. All rows
/// — serial, parallel large-N, and engine-threads — share this column
/// set, so the trajectory gate applies uniformly.
fn scale_row(sweep: &str, label: String, proto: &str, chunk: &[ScaleRun]) -> Row {
    let mean = average(&chunk.iter().map(|(m, ..)| *m).collect::<Vec<_>>());
    let worst = chunk
        .iter()
        .map(|(m, ..)| m.delivery)
        .fold(f64::INFINITY, f64::min);
    let per_run =
        |f: &dyn Fn(&ScaleRun) -> f64| chunk.iter().map(f).sum::<f64>() / chunk.len() as f64;
    Row::new(
        sweep,
        label,
        proto,
        vec![
            ("delivery".into(), mean.delivery),
            ("delivery_worst".into(), worst),
            ("latency_ms".into(), mean.latency * 1e3),
            (
                "control_frames_per_s".into(),
                per_run(&|(m, _, secs, _)| m.control_msgs as f64 / secs),
            ),
            (
                "control_bytes_per_node".into(),
                per_run(&|(m, _, _, n)| m.control_bytes as f64 / *n as f64),
            ),
            (
                "refresh_frames_per_s".into(),
                per_run(&|(_, d, secs, _)| d.refresh_frames as f64 / secs),
            ),
            (
                "refresh_suppressed".into(),
                per_run(&|(_, d, ..)| {
                    d.hvdb_counters.unwrap_or_default().refresh_suppressed as f64
                }),
            ),
            (
                "memory_per_node_bytes".into(),
                per_run(&|(_, d, ..)| d.memory_per_node_bytes),
            ),
            (
                "events_per_sec".into(),
                per_run(&|(_, d, ..)| d.events_processed as f64 / d.wall_secs.max(1e-9)),
            ),
            (
                "events_processed".into(),
                per_run(&|(_, d, ..)| d.events_processed as f64),
            ),
        ],
    )
}

/// The `scale` trajectory sweep: the paper's geometry stretched at
/// constant density, reporting what the north star cares about —
/// delivery, latency, *per-node* control cost and *per-node* memory
/// (both must stay flat as the network grows for the backbone to call
/// itself scalable). CI re-runs this sweep and compares every row
/// against the committed `BENCH_scale.json` within a tolerance band.
///
/// Three sub-sweeps:
///
/// * `network-size` (proto `hvdb`) — 100–2000 nodes on the serial
///   engine, the committed trajectory since PR 3;
/// * `network-size` (proto `hvdb-par`) — the large-N campaign points
///   (5000–100000 nodes) on the sharded parallel engine via
///   [`run_par_hvdb`]; delivery at every point from 20k up is gated at
///   >= 0.99 ([`crate::validate`]);
/// * `engine-threads` (proto `hvdb-par`) — HVDB itself at 1 vs N worker
///   threads on the same workload: `events_processed` must be exactly
///   equal (the determinism contract on the real protocol, not just the
///   flooding benchmark).
///
/// The engine-threads runs are stepped at a fixed sampling cadence
/// ([`run_par_hvdb_timeline`]; stepping a deterministic engine does not
/// change its event schedule), and the multi-thread arm's first seed
/// contributes the report's `timeline` block (head census and memory
/// flatness over sim-time) plus the non-deterministic `profile` block
/// (drain/commit/barrier phase split, per-lane busy time).
fn custom_scale(opts: &RunOpts) -> CustomOut {
    let node_counts: Vec<usize> = if opts.smoke {
        vec![30, 40]
    } else {
        vec![100, 200, 400, 600, 1000, 1400, 2000]
    };
    let par_counts: Vec<usize> = if opts.smoke {
        vec![]
    } else {
        vec![5000, 10000, 20000, 50000, 100000]
    };
    let mut seeds = opts.seeds.clone().unwrap_or_else(|| vec![1, 2]);
    if opts.smoke && opts.seeds.is_none() {
        seeds.truncate(1);
    }
    // vc_side is set per point by `scaled_vc_side` below.
    let base = Workload {
        dim: 4,
        range: 450.0,
        groups: 3,
        members_per_group: 10,
        packets_per_group: 8,
        warmup: SimDuration::from_secs(100),
        traffic_window: SimDuration::from_secs(30),
        cooldown: SimDuration::from_secs(20),
        ..Workload::default()
    };
    let scale_workload = |nodes: usize, seed: u64, threads: usize| {
        let w = Workload {
            nodes,
            side: (nodes as f64 * 8533.0).sqrt(),
            vc_side: scaled_vc_side(nodes),
            seed,
            threads,
            ..base.clone()
        };
        let w = if opts.smoke { w.smoke() } else { w };
        let mut scenario = w.build();
        // Geo unicast makes ~one VC of progress per hop (heads sit near
        // VC centres), so the default TTL of 24 strands far corners of
        // grids wider than ~12 VCs — the Manhattan diameter plus slack
        // keeps every member reachable at any sweep size.
        let diameter = 2 * scaled_vc_side(nodes) as u32;
        scenario.hvdb.geo_ttl = scenario.hvdb.geo_ttl.max(diameter + 8);
        scenario
    };
    let multi = if opts.threads > 1 { opts.threads } else { 4 };

    // Serial trajectory points, (node count × seed) in parallel via rayon.
    let jobs: Vec<(usize, u64)> = node_counts
        .iter()
        .flat_map(|&n| seeds.iter().map(move |&s| (n, s)))
        .collect();
    let results: Vec<ScaleRun> = jobs
        .par_iter()
        .map(|&(nodes, seed)| {
            let scenario = scale_workload(nodes, seed, 1);
            let secs = scenario.until.since(SimTime::ZERO).as_secs_f64();
            let (m, detail) = run_hvdb_tweaked(&scenario, &|_| {});
            (m, detail, secs, nodes)
        })
        .collect();
    let mut rows: Vec<Row> = node_counts
        .iter()
        .enumerate()
        .map(|(i, &nodes)| {
            let chunk = &results[i * seeds.len()..(i + 1) * seeds.len()];
            scale_row(
                "network-size",
                format!("nodes={nodes}"),
                Proto::Hvdb.name(),
                chunk,
            )
        })
        .collect();

    // Large-N campaign points on the sharded parallel engine: one seed
    // each (a 20k-node HVDB run is the wall-clock budget of the whole
    // serial sweep), run serially — each run already uses `multi`
    // worker threads.
    const PAR_SHARDS: usize = 64;
    for &nodes in &par_counts {
        let scenario = scale_workload(nodes, seeds[0], multi);
        let secs = scenario.until.since(SimTime::ZERO).as_secs_f64();
        let (m, detail) = run_par_hvdb(&scenario, PAR_SHARDS);
        let chunk = [(m, detail, secs, nodes)];
        rows.push(scale_row(
            "network-size",
            format!("nodes={nodes}"),
            "hvdb-par",
            &chunk,
        ));
    }

    // The engine-threads sweep: HVDB itself at 1 vs `multi` worker
    // threads on the same workload and shard layout. Everything but
    // wall-clock must match exactly; validate gates `events_processed`
    // equality across the two rows.
    let et_nodes = if opts.smoke { 40 } else { 2000 };
    // Both thread arms run stepped at the same cadence, so the
    // events_processed equality gate compares like with like; the
    // timeline/profile blocks come from the multi-thread arm's first
    // seed.
    const TIMELINE_STEPS: u64 = 16;
    let mut timeline = None;
    let mut profile = None;
    for &threads in &[1usize, multi] {
        let runs: Vec<ScaleRun> = seeds
            .iter()
            .map(|&seed| {
                let scenario = scale_workload(et_nodes, seed, threads);
                let secs = scenario.until.since(SimTime::ZERO).as_secs_f64();
                let interval = SimDuration((scenario.until.0 / TIMELINE_STEPS).max(1));
                let (m, detail, samples) = run_par_hvdb_timeline(&scenario, PAR_SHARDS, interval);
                if threads == multi && seed == seeds[0] {
                    timeline = Some(timeline_json(
                        interval.as_secs_f64(),
                        vec![
                            ("nodes".into(), Json::Num(et_nodes as f64)),
                            ("threads".into(), Json::Num(threads as f64)),
                        ],
                        &samples,
                    ));
                    profile = detail.engine_profile.as_ref().map(profile_json);
                }
                (m, detail, secs, et_nodes)
            })
            .collect();
        rows.push(scale_row(
            "engine-threads",
            format!("threads={threads}"),
            "hvdb-par",
            &runs,
        ));
    }
    CustomOut {
        rows,
        workload: None,
        timeline,
        profile,
    }
}

/// The `perf` scenario: wall-clock throughput of the simulation engine
/// itself, measured as events/s and simulated-seconds per wall-second on
/// **byte-identical workloads** under two delivery machineries:
///
/// * `hvdb-shared` — the zero-copy frame plane: one `DeliverMany` event
///   per broadcast, payload shared by refcount;
/// * `hvdb-cloned` — the pre-refactor arm: one event and one deep
///   payload copy per receiver
///   ([`SimConfig::per_receiver_delivery`](hvdb_sim::SimConfig) +
///   `HvdbConfig::deep_clone_frames`).
///
/// Both arms replay the identical event sequence (the golden-report test
/// enforces this bit-for-bit), so `events_processed` matches exactly and
/// the events/s ratio is a pure speedup. Runs are **serial** — no rayon —
/// because wall-clock is the measurand. `validate` gates the ratio at
/// the largest common node count ([`crate::validate::check_perf_gate`]).
///
/// A third sweep, `engine-threads`, measures the sharded parallel engine
/// ([`hvdb_sim::ParSimulator`] running [`hvdb_baselines::ParFlood`]) at 1
/// and `--threads` (default 4) worker threads on the gate node count:
/// identical `events_processed` at every thread count (the determinism
/// contract, always gated) and a >= 2x events/s speedup when the machine
/// has the cores to show one
/// ([`crate::validate::check_perf_threads_gate`]).
///
/// Smoke mode shrinks the node counts but keeps tens of simulated
/// seconds (unlike [`Workload::smoke`]'s milliseconds): a wall-clock
/// ratio needs enough work to rise above timer noise.
///
/// The engine-threads rows additionally report `lane_imbalance` —
/// max/mean per-lane busy wall-time from the engine profiler, 1.0 being
/// perfect balance. It is observational (never gated: wall-clock is
/// machine-dependent); the multi-thread arm's first seed also
/// contributes the report's non-deterministic `profile` block.
fn custom_perf(opts: &RunOpts) -> CustomOut {
    let node_counts: Vec<usize> = if opts.smoke {
        vec![120]
    } else {
        vec![200, 600, 1200, 2000]
    };
    let mut seeds = opts.seeds.clone().unwrap_or_else(|| vec![1, 2]);
    if opts.smoke && opts.seeds.is_none() {
        seeds.truncate(1);
    }
    // vc_side is set per point by `scaled_vc_side` below.
    let full = Workload {
        dim: 4,
        range: 450.0,
        groups: 3,
        members_per_group: 10,
        packets_per_group: 8,
        warmup: SimDuration::from_secs(100),
        traffic_window: SimDuration::from_secs(30),
        cooldown: SimDuration::from_secs(20),
        ..Workload::default()
    };
    let base = if opts.smoke {
        Workload {
            warmup: SimDuration::from_secs(40),
            traffic_window: SimDuration::from_secs(10),
            cooldown: SimDuration::from_secs(10),
            ..full
        }
    } else {
        full
    };
    const ARMS: [(&str, bool); 2] = [("hvdb-shared", false), ("hvdb-cloned", true)];
    let mut rows = Vec::new();
    for &nodes in &node_counts {
        for &(arm, cloned) in &ARMS {
            let mut events = 0u64;
            let mut wall = 0.0f64;
            let mut sim_secs = 0.0f64;
            let mut shared_frames = 0u64;
            let mut cloned_frames = 0u64;
            let mut delivery = 0.0f64;
            for &seed in &seeds {
                let w = Workload {
                    nodes,
                    side: (nodes as f64 * 8533.0).sqrt(),
                    vc_side: scaled_vc_side(nodes),
                    seed,
                    ..base.clone()
                };
                let mut scenario = w.build();
                scenario.sim.per_receiver_delivery = cloned;
                let (m, detail) =
                    run_hvdb_tweaked(&scenario, &|cfg| cfg.deep_clone_frames = cloned);
                events += detail.events_processed;
                wall += detail.wall_secs;
                sim_secs += detail.sim_secs;
                shared_frames += detail.frames_shared;
                cloned_frames += detail.frames_cloned;
                delivery += m.delivery;
            }
            rows.push(Row::new(
                "delivery-mode",
                format!("nodes={nodes}"),
                arm,
                vec![
                    ("events_per_s".into(), events as f64 / wall.max(1e-9)),
                    (
                        "sim_sec_per_wall_sec".into(),
                        sim_sec_per_wall_sec(sim_secs, wall),
                    ),
                    ("wall_ms".into(), wall * 1e3),
                    ("events_processed".into(), events as f64),
                    ("frames_shared".into(), shared_frames as f64),
                    ("frames_cloned".into(), cloned_frames as f64),
                    ("delivery".into(), delivery / seeds.len() as f64),
                ],
            ));
        }
    }
    // The engine-threads arm: the *same* flooding workload on the sharded
    // parallel engine at 1 and N worker threads. Thread count must be
    // invisible in everything but wall-clock (events_processed is gated
    // for exact equality); on a machine with >= 4 hardware threads the
    // multi-thread row must also clear the speedup floor
    // ([`crate::validate::check_perf_threads_gate`]).
    const PAR_SHARDS: usize = 16;
    let par_nodes = if opts.smoke { 120 } else { 600 };
    let multi = if opts.threads > 1 { opts.threads } else { 4 };
    let mut profile = None;
    for &threads in &[1usize, multi] {
        let mut events = 0u64;
        let mut wall = 0.0f64;
        let mut sim_secs = 0.0f64;
        let mut delivery = 0.0f64;
        let mut imbalance = 0.0f64;
        for &seed in &seeds {
            let w = Workload {
                nodes: par_nodes,
                side: (par_nodes as f64 * 8533.0).sqrt(),
                vc_side: scaled_vc_side(par_nodes),
                seed,
                threads,
                // Flooding carries the whole load here; triple the packet
                // schedule so lookahead windows stay dense enough for the
                // speedup measurement to reflect the engine, not idle
                // lanes between wavefronts.
                packets_per_group: base.packets_per_group * 3,
                ..base.clone()
            };
            let (m, detail) = run_par_flood(&w.build(), PAR_SHARDS);
            events += detail.events_processed;
            wall += detail.wall_secs;
            sim_secs += detail.sim_secs;
            delivery += m.delivery;
            imbalance += detail.lane_imbalance;
            if threads == multi && seed == seeds[0] {
                profile = detail.engine_profile.as_ref().map(profile_json);
            }
        }
        rows.push(Row::new(
            "engine-threads",
            format!("threads={threads}"),
            "par-flood",
            vec![
                ("events_per_s".into(), events as f64 / wall.max(1e-9)),
                (
                    "sim_sec_per_wall_sec".into(),
                    sim_sec_per_wall_sec(sim_secs, wall),
                ),
                ("wall_ms".into(), wall * 1e3),
                ("events_processed".into(), events as f64),
                ("hardware_threads".into(), rayon::hardware_threads() as f64),
                ("lane_imbalance".into(), imbalance / seeds.len() as f64),
                ("delivery".into(), delivery / seeds.len() as f64),
            ],
        ));
    }
    CustomOut {
        rows,
        profile,
        ..CustomOut::default()
    }
}

/// The `overhead` scenario: control traffic vs membership-churn rate at a
/// fixed 10% frame loss, run under both the adaptive refresh controller
/// and the PR 2 fixed rate on byte-identical inputs. The quiet phase
/// (`churn=0`) is the gated point: adaptive refresh-plane frames/s must
/// be at least half the fixed-rate baseline's
/// ([`crate::validate::check_overhead_gate`]), converting the ROADMAP's
/// c4 overhead delta into an enforced number.
fn custom_overhead(opts: &RunOpts) -> Vec<Row> {
    let base = Workload {
        side: 800.0,
        nodes: 120,
        vc_side: 8,
        dim: 4,
        range: 250.0,
        loss_prob: 0.10,
        groups: 2,
        members_per_group: 8,
        packets_per_group: 6,
        warmup: SimDuration::from_secs(100),
        traffic_window: SimDuration::from_secs(30),
        cooldown: SimDuration::from_secs(20),
        enhanced_fraction: 1.0,
        ..Workload::default()
    };
    let churns: Vec<usize> = if opts.smoke {
        vec![0, 3]
    } else {
        vec![0, 12, 40]
    };
    let mut seeds = opts.seeds.clone().unwrap_or_else(|| vec![1, 2, 3]);
    if opts.smoke && opts.seeds.is_none() {
        seeds.truncate(1);
    }
    const VARIANTS: [(&str, bool); 2] = [("hvdb-adaptive", true), ("hvdb-fixed", false)];
    let mut jobs: Vec<(usize, bool, u64)> = Vec::new();
    for &churn in &churns {
        for &(_, adaptive) in &VARIANTS {
            for &seed in &seeds {
                jobs.push((churn, adaptive, seed));
            }
        }
    }
    let results: Vec<DetailedRun> = jobs
        .par_iter()
        .map(|&(churn, adaptive, seed)| {
            let w = Workload {
                churn_events: churn,
                seed,
                ..base.clone()
            };
            let w = if opts.smoke { w.smoke() } else { w };
            let scenario = w.build();
            let secs = scenario.until.since(SimTime::ZERO).as_secs_f64();
            let (m, c, refresh) =
                run_hvdb_detailed(&scenario, &|cfg| cfg.adaptive_refresh = adaptive);
            (m, c, refresh, secs, w.nodes)
        })
        .collect();
    let mut rows = Vec::new();
    let mut chunk_start = 0;
    for &churn in &churns {
        for &(proto, _) in &VARIANTS {
            let chunk = &results[chunk_start..chunk_start + seeds.len()];
            chunk_start += seeds.len();
            let mean = average(&chunk.iter().map(|(m, ..)| *m).collect::<Vec<_>>());
            let per_run = |f: &dyn Fn(&DetailedRun) -> f64| {
                chunk.iter().map(f).sum::<f64>() / chunk.len() as f64
            };
            rows.push(Row::new(
                "churn",
                format!("churn={churn}"),
                proto,
                vec![
                    ("delivery".into(), mean.delivery),
                    (
                        "control_frames_per_s".into(),
                        per_run(&|(m, _, _, secs, _)| m.control_msgs as f64 / secs),
                    ),
                    (
                        "control_bytes_per_node".into(),
                        per_run(&|(m, _, _, _, n)| m.control_bytes as f64 / *n as f64),
                    ),
                    (
                        "refresh_frames_per_s".into(),
                        per_run(&|(_, _, r, secs, _)| *r as f64 / secs),
                    ),
                    (
                        "refresh_suppressed".into(),
                        per_run(&|(_, c, ..)| c.refresh_suppressed as f64),
                    ),
                    (
                        "stale_suppressed".into(),
                        per_run(&|(_, c, ..)| c.stale_suppressed as f64),
                    ),
                    (
                        "stamp_hints_sent".into(),
                        per_run(&|(_, c, ..)| c.stamp_hints_sent as f64),
                    ),
                    // The PR-4 residual made visible: region-cube builds
                    // served from the per-head cache vs actually
                    // performed. In the quiet phase nearly every
                    // designation check is a hit.
                    (
                        "cube_cache_hits".into(),
                        per_run(&|(_, c, ..)| c.cube_cache_hits as f64),
                    ),
                    (
                        "cube_rebuilds".into(),
                        per_run(&|(_, c, ..)| c.cube_rebuilds as f64),
                    ),
                ],
            ));
        }
    }
    rows
}

/// The `traffic` scenario: deterministic shaped load swept up the
/// saturation knee, HVDB against the flooding and shared-tree baselines
/// on byte-identical offered traffic.
///
/// Every point offers `pps` packets/s of Poisson traffic split over 24
/// concurrent flows (12 groups × 2 flows, group sessions staggered 1 s
/// apart), through a 250 ms interface-queue cap, and reports
/// histogram-derived goodput, p50/p99/p999 latency and jitter — the
/// traffic plane's per-flow accounting, no per-packet records. As load
/// crosses a protocol's capacity its queues saturate: latency quantiles
/// blow up and the queue cap starts dropping, so delivery falls — the
/// knee. Flooding spends Θ(N) transmissions per packet (every node's
/// radio carries the whole offered load), the shared tree funnels
/// everything through its core; HVDB's clustered trees spread the same
/// load across the backbone, which is exactly the §5 claim
/// [`crate::validate::check_traffic_gate`] turns into a CI gate: HVDB's
/// knee must sit strictly above both baselines', and its pre-knee p99
/// must stay inside the committed band.
fn custom_traffic(opts: &RunOpts) -> Vec<Row> {
    use hvdb_traffic::{SourceModel, TrafficSpec};
    // The paper's §6 geometry at full backbone occupancy, zero frame
    // loss and no mobility: the sweep must expose *load* limits, not
    // control-plane robustness (the loss scenario covers that).
    let base = Workload {
        side: 800.0,
        nodes: 120,
        vc_side: 8,
        dim: 4,
        range: 250.0,
        // Many small sessions: HVDB's per-packet cost scales with the
        // member-CH count of the destination group, flooding's with N —
        // the session mix real multicast workloads have (and the paper
        // assumes) is lots of modest groups, not a few giant ones.
        groups: 12,
        members_per_group: 4,
        packets_per_group: 0, // all data comes from the traffic spec
        payload: 512,
        warmup: SimDuration::from_secs(100),
        traffic_window: SimDuration::from_secs(20),
        cooldown: SimDuration::from_secs(15),
        enhanced_fraction: 1.0,
        queue_cap: SimDuration::from_millis(250),
        compact_delivery: true,
        ..Workload::default()
    };
    let offered: Vec<f64> = if opts.smoke {
        vec![10.0, 20.0]
    } else {
        vec![20.0, 40.0, 80.0, 160.0, 240.0, 320.0, 480.0, 640.0]
    };
    let mut seeds = opts.seeds.clone().unwrap_or_else(|| vec![1, 2]);
    if opts.smoke && opts.seeds.is_none() {
        seeds.truncate(1);
    }
    const PROTOS: [Proto; 3] = [Proto::Hvdb, Proto::Flooding, Proto::SharedTree];
    const FLOWS_PER_GROUP: u32 = 2;
    // Derived, not hardcoded: retuning base.groups must retune the
    // per-flow rate split with it.
    let flows = base.groups as u32 * FLOWS_PER_GROUP;
    let mut jobs: Vec<(f64, Proto, u64)> = Vec::new();
    for &pps in &offered {
        for &proto in &PROTOS {
            for &seed in &seeds {
                jobs.push((pps, proto, seed));
            }
        }
    }
    let results: Vec<(RunMetrics, TrafficProfile, f64)> = jobs
        .par_iter()
        .map(|&(pps, proto, seed)| {
            let w = Workload {
                traffic_spec: Some(TrafficSpec {
                    flows_per_group: FLOWS_PER_GROUP,
                    rate_pps: pps / flows as f64,
                    payload: base.payload,
                    model: SourceModel::Poisson,
                    group_stagger_us: 1_000_000,
                }),
                seed,
                ..base.clone()
            };
            let w = if opts.smoke { w.smoke() } else { w };
            let window_secs = w.traffic_window.as_secs_f64();
            let scenario = w.build();
            let (m, detail) = match proto {
                // Zero-loss heavy load: one LocalDeliver broadcast per
                // delivery — the repeat knob exists for loss robustness
                // and would triple HVDB's final-hop load for nothing.
                Proto::Hvdb => run_hvdb_tweaked(&scenario, &|cfg| cfg.deliver_repeats = 1),
                p => run_one_instrumented(p, &scenario),
            };
            (m, detail.traffic, window_secs)
        })
        .collect();
    let mut rows = Vec::new();
    let mut chunk_start = 0;
    for &pps in &offered {
        for &proto in &PROTOS {
            let chunk = &results[chunk_start..chunk_start + seeds.len()];
            chunk_start += seeds.len();
            let mean_m = average(&chunk.iter().map(|(m, ..)| *m).collect::<Vec<_>>());
            let worst = chunk
                .iter()
                .map(|(m, ..)| m.delivery)
                .fold(f64::INFINITY, f64::min);
            let prof = |f: &dyn Fn(&TrafficProfile) -> f64| {
                chunk.iter().map(|(_, p, _)| f(p)).sum::<f64>() / chunk.len() as f64
            };
            // Receiver-slot throughput: distinct (packet, receiver)
            // deliveries per second — deliberately NOT in the same unit
            // as offered_pps (a packet fans out to every group member).
            let delivered_pps = chunk
                .iter()
                .map(|(_, p, secs)| p.flow_delivered as f64 / secs.max(1e-9))
                .sum::<f64>()
                / chunk.len() as f64;
            rows.push(Row::new(
                "offered-load",
                format!("pps={pps}"),
                proto.name(),
                vec![
                    ("offered_pps".into(), pps),
                    ("delivery".into(), mean_m.delivery),
                    ("delivery_worst".into(), worst),
                    ("delivered_pps".into(), delivered_pps),
                    ("p50_ms".into(), prof(&|p| p.p50_ms)),
                    ("p99_ms".into(), prof(&|p| p.p99_ms)),
                    ("p999_ms".into(), prof(&|p| p.p999_ms)),
                    ("jitter_mean_ms".into(), prof(&|p| p.jitter_mean_ms)),
                    ("jitter_p99_ms".into(), prof(&|p| p.jitter_p99_ms)),
                    ("hops_mean".into(), prof(&|p| p.hops_mean)),
                    (
                        "drops_queue_full".into(),
                        prof(&|p| p.drops_queue_full as f64),
                    ),
                ],
            ));
        }
    }
    rows
}

/// C1: high availability via disjoint logical routes.
fn custom_c1(opts: &RunOpts) -> Vec<Row> {
    let mut rows = Vec::new();
    // C1a — disjoint-path count between surviving pairs as the cube
    // degrades (pure structure).
    let dims: Vec<u8> = if opts.smoke {
        vec![4]
    } else {
        vec![3, 4, 5, 6]
    };
    let failure_levels: Vec<usize> = if opts.smoke {
        vec![0, 4]
    } else {
        vec![0, 2, 4, 6, 8]
    };
    let trials = if opts.smoke { 3 } else { 20 };
    let mut rng = SimRng::new(5);
    for &dim in &dims {
        for &failures in &failure_levels {
            let mut total = 0usize;
            let mut samples = 0usize;
            for _ in 0..trials {
                let mut cube = IncompleteHypercube::complete(dim);
                let n = 1usize << dim;
                for idx in rng.sample_indices(n, failures.min(n.saturating_sub(2))) {
                    cube.remove_node(idx as u32);
                }
                let alive: Vec<u32> = cube.iter_nodes().collect();
                if alive.len() < 2 {
                    continue;
                }
                for _ in 0..4 {
                    let a = alive[rng.index(alive.len())];
                    let b = alive[rng.index(alive.len())];
                    if a == b {
                        continue;
                    }
                    total += pair_connectivity(&cube, a, b);
                    samples += 1;
                }
            }
            rows.push(Row::new(
                "disjoint-paths-under-damage",
                format!("dim={dim},failed={failures}"),
                "-",
                vec![(
                    "mean_disjoint_paths".into(),
                    total as f64 / samples.max(1) as f64,
                )],
            ));
        }
    }
    // C1b — QoS sessions fail over instantly onto pre-computed backups.
    let link = |ms: u64| QosMetrics {
        delay: SimDuration::from_millis(ms),
        bandwidth_bps: 2e6,
    };
    let mut table = RouteTable::new(Hnid(0), 4);
    for (hop, ms) in [(1u32, 1u64), (2, 2), (4, 3)] {
        table.integrate_beacon(
            Hnid(hop),
            link(ms),
            &[AdvertisedRoute {
                dst: Hnid(7),
                hops: 1,
                qos: link(ms),
            }],
            SimTime::ZERO,
        );
    }
    let mut sm = SessionManager::new();
    let s = sm
        .establish(&table, Hnid(7), QosRequirement::BEST_EFFORT)
        .expect("session admitted");
    let _ = s;
    for failed in [Hnid(1), Hnid(2)] {
        table.remove_via(failed);
        sm.on_neighbor_failed(&table, failed);
    }
    rows.push(Row::new(
        "qos-session-failover",
        "3-disjoint-routes,2-failures",
        "-",
        vec![
            ("failovers".into(), sm.failovers as f64),
            ("breaks".into(), sm.breaks as f64),
        ],
    ));
    // C1c — full protocol delivery under CH fail-stop.
    let failure_counts: Vec<usize> = if opts.smoke {
        vec![0, 2]
    } else {
        vec![0, 5, 10, 20]
    };
    for failures in failure_counts {
        let base = Workload {
            seed: 21,
            fail_count: failures,
            ..Workload::default()
        };
        let w = if opts.smoke { base.smoke() } else { base };
        let (m, detail) = run_one_instrumented(Proto::Hvdb, &w.build());
        let c = detail.hvdb_counters.unwrap_or_default();
        let mut metrics = m.metric_pairs();
        metrics.push(("neighbors_expired".into(), c.neighbors_expired as f64));
        metrics.push(("route_failovers".into(), c.route_failovers as f64));
        rows.push(Row::new(
            "delivery-under-fail-stop",
            format!("failures={failures}"),
            Proto::Hvdb.name(),
            metrics,
        ));
    }
    rows
}

fn mean_distance(cube: &IncompleteHypercube) -> f64 {
    let nodes: Vec<u32> = cube.iter_nodes().collect();
    let mut total = 0u64;
    let mut pairs = 0u64;
    for &src in &nodes {
        for r in local_routes(cube, src, u32::MAX) {
            total += r.hops as u64;
            pairs += 1;
        }
    }
    total as f64 / pairs.max(1) as f64
}

/// C2: small diameter.
fn custom_c2(opts: &RunOpts) -> Vec<Row> {
    let mut rows = Vec::new();
    let dims: Vec<u8> = if opts.smoke {
        vec![3, 4]
    } else {
        vec![3, 4, 5, 6]
    };
    // C2a — diameter and mean logical distance, with and without the
    // Fig. 3 grid links.
    for &dim in &dims {
        let pure = IncompleteHypercube::complete(dim);
        let rows_g = 1u16 << dim.div_ceil(2);
        let cols_g = 1u16 << (dim / 2);
        let cfg = HvdbConfig::new(Aabb::from_size(1600.0, 1600.0), rows_g, cols_g, dim);
        let with_grid = build_region_cube(&cfg, Hid::new(0, 0), (0..1u32 << dim).map(Hnid));
        rows.push(Row::new(
            "diameter-vs-dimension",
            format!("dim={dim}"),
            "-",
            vec![
                ("diameter".into(), diameter(&pure).unwrap() as f64),
                ("mean_distance".into(), mean_distance(&pure)),
                (
                    "diameter_with_grid".into(),
                    diameter(&with_grid).unwrap() as f64,
                ),
                ("mean_distance_with_grid".into(), mean_distance(&with_grid)),
            ],
        ));
    }
    // C2b — incomplete 4-cubes with grid links across occupancy.
    let trials = if opts.smoke { 5 } else { 30 };
    let cfg = HvdbConfig::fig2(Aabb::from_size(800.0, 800.0));
    let mut rng = SimRng::new(17);
    for occupancy in [0.4, 0.6, 0.8, 1.0] {
        let mut connected = 0usize;
        let mut diam_sum = 0u64;
        let mut dist_sum = 0.0;
        let mut samples = 0usize;
        for _ in 0..trials {
            let present: Vec<Hnid> = (0..16u32)
                .filter(|_| rng.chance(occupancy))
                .map(Hnid)
                .collect();
            if present.len() < 2 {
                continue;
            }
            let cube = build_region_cube(&cfg, Hid::new(0, 0), present);
            if cube.is_connected() {
                connected += 1;
                diam_sum += diameter(&cube).unwrap() as u64;
                dist_sum += mean_distance(&cube);
                samples += 1;
            }
        }
        rows.push(Row::new(
            "incomplete-cubes-vs-occupancy",
            format!("occupancy={occupancy}"),
            "-",
            vec![
                (
                    "connected_fraction".into(),
                    connected as f64 / trials as f64,
                ),
                (
                    "mean_diameter".into(),
                    diam_sum as f64 / samples.max(1) as f64,
                ),
                ("mean_distance".into(), dist_sum / samples.max(1) as f64),
            ],
        ));
    }
    // C2c — fraction of the cube reachable within k hops.
    for &dim in &dims {
        let rows_g = 1u16 << dim.div_ceil(2);
        let cols_g = 1u16 << (dim / 2);
        let cfg = HvdbConfig::new(Aabb::from_size(1600.0, 1600.0), rows_g, cols_g, dim);
        let cube = build_region_cube(&cfg, Hid::new(0, 0), (0..1u32 << dim).map(Hnid));
        let total = (1usize << dim) - 1;
        for k in 1u32..=4 {
            let covered = local_routes(&cube, 0, k).len();
            rows.push(Row::new(
                "horizon-coverage",
                format!("dim={dim},k={k}"),
                "-",
                vec![("covered_fraction".into(), covered as f64 / total as f64)],
            ));
        }
    }
    rows
}

/// C3: load balancing vs the shared tree's core bottleneck.
fn custom_c3(opts: &RunOpts) -> Vec<Row> {
    let base = Workload {
        packets_per_group: 40, // heavy traffic to expose hot spots
        groups: 2,
        members_per_group: 15,
        seed: 71,
        ..Workload::default()
    };
    let w = if opts.smoke { base.smoke() } else { base };
    let scenario = w.build();
    let mut rows = Vec::new();
    let dist_metrics = |tx: &[u64]| {
        let mut sorted: Vec<u64> = tx.to_vec();
        sorted.sort_unstable();
        let hottest = *sorted.last().unwrap_or(&0);
        let median = sorted.get(sorted.len() / 2).copied().unwrap_or(0);
        vec![
            ("jain".into(), jain_fairness(tx)),
            ("max_mean".into(), max_mean_ratio(tx)),
            ("gini".into(), gini(tx)),
            ("hottest_bytes".into(), hottest as f64),
            ("median_bytes".into(), median as f64),
        ]
    };
    // HVDB, including the CH-plane view the claim is about.
    let mut sim = Simulator::new(scenario.sim.clone(), scenario.hvdb_mobility());
    let mut hvdb = HvdbProtocol::new(
        scenario.hvdb.clone(),
        &scenario.members,
        scenario.traffic.clone(),
        vec![],
    );
    sim.run(&mut hvdb, scenario.until);
    let mut m = dist_metrics(&sim.stats().node_tx_bytes);
    m.push(("delivery".into(), metrics_of(sim.stats()).delivery));
    rows.push(Row::new("tx-bytes-distribution", "all-nodes", "hvdb", m));
    let heads = hvdb.cluster_heads();
    let head_tx: Vec<u64> = heads
        .iter()
        .map(|h| sim.stats().node_tx_bytes[h.idx()])
        .collect();
    rows.push(Row::new(
        "tx-bytes-distribution",
        "cluster-heads",
        "hvdb",
        dist_metrics(&head_tx),
    ));
    // Shared tree, including the core's load multiple.
    let mut sim = Simulator::new(scenario.sim.clone(), scenario.hvdb_mobility());
    let mut tree = hvdb_baselines::SharedTreeProtocol::new(
        &scenario.members,
        scenario.traffic.clone(),
        vec![],
    );
    sim.run(&mut tree, scenario.until);
    let mut m = dist_metrics(&sim.stats().node_tx_bytes);
    m.push(("delivery".into(), metrics_of(sim.stats()).delivery));
    if let Some(core) = tree.core() {
        let core_bytes = sim.stats().node_tx_bytes[core.idx()];
        let mean =
            sim.stats().node_tx_bytes.iter().sum::<u64>() as f64 / scenario.sim.num_nodes as f64;
        m.push(("core_bytes".into(), core_bytes as f64));
        m.push(("core_over_mean".into(), core_bytes as f64 / mean.max(1.0)));
    }
    rows.push(Row::new(
        "tx-bytes-distribution",
        "all-nodes",
        "shared-tree",
        m,
    ));
    // Flooding as the perfectly-uniform reference.
    let flood = run_one(Proto::Flooding, &scenario);
    rows.push(Row::new(
        "tx-bytes-distribution",
        "all-nodes",
        "flooding",
        flood.metric_pairs(),
    ));
    rows
}

/// F1: model construction statistics.
fn custom_f1(opts: &RunOpts) -> Vec<Row> {
    use hvdb_cluster::{diff, form_clusters, Candidate};
    let area = Aabb::from_size(1600.0, 1600.0);
    let cfg = HvdbConfig::new(area, 8, 8, 4);
    let snapshot = |n: usize, enhanced: f64, rng: &mut SimRng| -> Vec<Candidate> {
        (0..n)
            .map(|i| Candidate {
                node: i as u32,
                pos: rng.point_in(&cfg.grid.area()),
                vel: rng.velocity(0.5, 3.0),
                eligible: rng.chance(enhanced),
            })
            .collect()
    };
    let mut rows = Vec::new();
    let node_counts: Vec<usize> = if opts.smoke {
        vec![50, 100]
    } else {
        vec![50, 100, 200, 400, 800, 1600]
    };
    for n in node_counts {
        let mut rng = SimRng::new(42);
        let snap = snapshot(n, 0.8, &mut rng);
        let model = build_model(&cfg, &snap);
        let s = model.stats(&cfg.map, n);
        rows.push(Row::new(
            "backbone-vs-node-count",
            format!("nodes={n}"),
            "-",
            vec![
                ("cluster_heads".into(), s.cluster_heads as f64),
                ("border_chs".into(), s.border_chs as f64),
                ("inner_chs".into(), s.inner_chs as f64),
                ("hypercubes".into(), s.hypercubes as f64),
                ("mean_occupancy".into(), s.mean_occupancy),
                ("connected_fraction".into(), s.connected_fraction),
            ],
        ));
    }
    let fractions: Vec<f64> = if opts.smoke {
        vec![0.25, 0.75]
    } else {
        vec![0.1, 0.25, 0.5, 0.75, 1.0]
    };
    let n = if opts.smoke { 100 } else { 400 };
    for e in fractions {
        let mut rng = SimRng::new(43);
        let snap = snapshot(n, e, &mut rng);
        let model = build_model(&cfg, &snap);
        let s = model.stats(&cfg.map, n);
        rows.push(Row::new(
            "backbone-vs-enhanced-fraction",
            format!("enhanced={e}"),
            "-",
            vec![
                ("cluster_heads".into(), s.cluster_heads as f64),
                ("hypercubes".into(), s.hypercubes as f64),
                ("mean_occupancy".into(), s.mean_occupancy),
                ("connected_fraction".into(), s.connected_fraction),
            ],
        ));
    }
    let speeds: Vec<(f64, f64)> = if opts.smoke {
        vec![(0.5, 2.0)]
    } else {
        vec![(0.1, 0.5), (0.5, 2.0), (2.0, 8.0), (8.0, 20.0)]
    };
    for (lo, hi) in speeds {
        let mut rng = SimRng::new(44);
        let mut snap = snapshot(n, 0.8, &mut rng);
        for c in snap.iter_mut() {
            c.vel = rng.velocity(lo, hi);
        }
        let before = form_clusters(&cfg.election, &cfg.grid, &snap);
        for c in snap.iter_mut() {
            c.pos = cfg.grid.area().clamp(c.pos.advanced(c.vel, 10.0));
        }
        let after = form_clusters(&cfg.election, &cfg.grid, &snap);
        let (events, report) = diff(&before, &after);
        rows.push(Row::new(
            "cluster-stability-vs-speed",
            format!("speed={lo}-{hi}"),
            "-",
            vec![
                ("retention".into(), report.retention()),
                ("handovers".into(), events.len() as f64),
            ],
        ));
    }
    rows
}

/// F2: the Fig. 2 worked example.
fn custom_f2(opts: &RunOpts) -> Vec<Row> {
    use hvdb_cluster::Candidate;
    let area = Aabb::from_size(800.0, 800.0);
    let cfg = HvdbConfig::fig2(area);
    let full: Vec<Candidate> = cfg
        .grid
        .iter_ids()
        .enumerate()
        .map(|(i, vc)| Candidate {
            node: i as u32,
            pos: cfg.grid.vcc(vc),
            vel: Vec2::ZERO,
            eligible: true,
        })
        .collect();
    let mut rows = Vec::new();
    // The figure audit is milliseconds of pure structure; smoke keeps just
    // the exact-figure variant.
    let variants: &[(&str, f64)] = if opts.smoke {
        &[("full", 1.0)]
    } else {
        &[("full", 1.0), ("sparse-60pct", 0.6)]
    };
    for &(label, occupancy) in variants {
        let mut rng = SimRng::new(7);
        let snap: Vec<Candidate> = full
            .iter()
            .filter(|_| occupancy >= 1.0 || rng.chance(occupancy))
            .cloned()
            .collect();
        let model = build_model(&cfg, &snap);
        let s = model.stats(&cfg.map, snap.len());
        let mut connected_cubes = 0usize;
        let mut complete_cubes = 0usize;
        for hid in &model.mesh_present {
            let cube = model.cube(*hid).expect("present cube");
            if cube.is_connected() {
                connected_cubes += 1;
            }
            if cube.is_complete() {
                complete_cubes += 1;
            }
        }
        rows.push(Row::new(
            "fig2-structure",
            label,
            "-",
            vec![
                ("cluster_heads".into(), s.cluster_heads as f64),
                ("border_chs".into(), s.border_chs as f64),
                ("inner_chs".into(), s.inner_chs as f64),
                ("hypercubes".into(), s.hypercubes as f64),
                ("mean_occupancy".into(), s.mean_occupancy),
                ("connected_cubes".into(), connected_cubes as f64),
                ("complete_cubes".into(), complete_cubes as f64),
            ],
        ));
        if occupancy >= 1.0 {
            // The exact figure: every VC occupied, four complete 4-cubes.
            assert!(model.mesh_present.contains(&Hid::new(0, 0)));
        }
    }
    rows
}

/// F3: the Fig. 3 hypercube with grid links.
fn custom_f3(opts: &RunOpts) -> Vec<Row> {
    let cfg = HvdbConfig::fig2(Aabb::from_size(800.0, 800.0));
    let cube = build_region_cube(&cfg, Hid::new(0, 0), (0..16u32).map(Hnid));
    let mut rows = Vec::new();
    // Node 1000's local routes — the paper's worked example.
    let table = local_routes(&cube, 0b1000, 2);
    let one_hop = table.iter().filter(|r| r.hops == 1).count();
    let two_hop = table.iter().filter(|r| r.hops == 2).count();
    // The paper's published 2-hop chains are valid logical-link sequences.
    let mut chains_valid = 0usize;
    for chain in [
        [0b1000u32, 0b1001, 0b1100],
        [0b1000, 0b1100, 0b1101],
        [0b1000, 0b0010, 0b0011],
        [0b1000, 0b0010, 0b0110],
    ] {
        let valid = chain.windows(2).all(|hop| cube.has_link(hop[0], hop[1]))
            && table
                .iter()
                .find(|r| r.dst == chain[2])
                .is_some_and(|r| r.hops <= 2);
        if valid {
            chains_valid += 1;
        }
    }
    rows.push(Row::new(
        "node-1000-routes",
        label::to_bits(0b1000, 4),
        "-",
        vec![
            ("one_hop_routes".into(), one_hop as f64),
            ("two_hop_routes".into(), two_hop as f64),
            ("paper_chains_valid".into(), chains_valid as f64),
        ],
    ));
    // Structural properties vs dimension.
    let dims: Vec<u8> = if opts.smoke {
        vec![4]
    } else {
        vec![3, 4, 5, 6]
    };
    for dim in dims {
        let c = IncompleteHypercube::complete(dim);
        let far = (1u32 << dim) - 1;
        rows.push(Row::new(
            "structure-vs-dimension",
            format!("dim={dim}"),
            "-",
            vec![
                ("nodes".into(), c.node_count() as f64),
                ("diameter".into(), diameter(&c).unwrap() as f64),
                (
                    "disjoint_opposite".into(),
                    pair_connectivity(&c, 0, far) as f64,
                ),
                (
                    "disjoint_adjacent".into(),
                    pair_connectivity(&c, 0, 1) as f64,
                ),
            ],
        ));
    }
    // Grid links shrink logical distances (dim 4, full region).
    let plain = IncompleteHypercube::complete(4);
    rows.push(Row::new(
        "grid-links-effect",
        "dim=4",
        "-",
        vec![
            ("diameter_pure".into(), diameter(&plain).unwrap() as f64),
            ("diameter_with_grid".into(), diameter(&cube).unwrap() as f64),
            (
                "connectivity_pure".into(),
                pair_connectivity(&plain, 0b0000, 0b1111) as f64,
            ),
            (
                "connectivity_with_grid".into(),
                pair_connectivity(&cube, 0b0000, 0b1111) as f64,
            ),
        ],
    ));
    rows
}

/// F4: proactive route maintenance on a pinned-grid deployment.
fn custom_f4(opts: &RunOpts) -> Vec<Row> {
    // One node pinned near every VC centre.
    let (grid_side, run_secs) = if opts.smoke { (4u16, 20u64) } else { (8, 60) };
    let build_sim = |seed: u64| -> (Simulator<FrameBytes>, HvdbConfig) {
        let area = Aabb::from_size(200.0 * grid_side as f64, 200.0 * grid_side as f64);
        let cfg = HvdbConfig::new(area, grid_side, grid_side, 4);
        let n = (grid_side * grid_side) as usize;
        let sim_cfg = SimConfig {
            area,
            num_nodes: n,
            radio: RadioConfig {
                range: 500.0,
                ..Default::default()
            },
            mobility_tick: SimDuration::ZERO,
            enhanced_fraction: 1.0,
            seed,
            per_receiver_delivery: false,
            compact_delivery: false,
        };
        let mut sim: Simulator<FrameBytes> = Simulator::new(sim_cfg, Box::new(Stationary));
        let ids: Vec<_> = cfg.grid.iter_ids().collect();
        for (i, vc) in ids.iter().enumerate() {
            let c = cfg.grid.vcc(*vc);
            sim.world_mut().set_motion(
                NodeId(i as u32),
                Point::new(c.x + (i % 5) as f64, c.y),
                Vec2::ZERO,
            );
        }
        sim.world_mut().rebuild_index();
        (sim, cfg)
    };
    let mut rows = Vec::new();
    // F4a — route-table completeness and beacon cost vs horizon k.
    let ks: Vec<u32> = if opts.smoke {
        vec![2]
    } else {
        vec![1, 2, 3, 4, 5, 6]
    };
    for k in ks {
        let (mut sim, mut cfg) = build_sim(10 + k as u64);
        cfg.k = k;
        let mut proto = HvdbProtocol::new(cfg, &[], vec![], vec![]);
        sim.run(&mut proto, SimTime::from_secs(run_secs));
        let heads = proto.cluster_heads();
        let dests: usize = heads
            .iter()
            .filter_map(|h| proto.route_table(*h))
            .map(|t| t.destination_count())
            .sum();
        let msgs = sim.stats().msgs("beacon");
        rows.push(Row::new(
            "route-tables-vs-horizon",
            format!("k={k}"),
            Proto::Hvdb.name(),
            vec![
                (
                    "avg_destinations".into(),
                    dests as f64 / heads.len().max(1) as f64,
                ),
                ("beacon_msgs".into(), msgs as f64),
                ("beacon_bytes".into(), sim.stats().bytes("beacon") as f64),
                (
                    "beacons_per_ch_per_sec".into(),
                    msgs as f64 / heads.len().max(1) as f64 / run_secs as f64,
                ),
            ],
        ));
    }
    // F4b — recovery after CH failures (k = 4).
    let failure_counts: Vec<usize> = if opts.smoke {
        vec![0, 2]
    } else {
        vec![0, 4, 8, 16]
    };
    for failures in failure_counts {
        let (mut sim, cfg) = build_sim(99);
        let mut proto = HvdbProtocol::new(cfg, &[], vec![], vec![]);
        // Let the backbone converge, then fail CHs, then let it recover.
        let mut plan = FaultPlan::new();
        for f in 0..failures {
            plan = plan.fail(SimTime::from_secs(run_secs), NodeId((f * 4) as u32));
        }
        sim.inject_plan(&plan);
        sim.run(&mut proto, SimTime::from_secs(2 * run_secs));
        let heads = proto.cluster_heads();
        let dests: usize = heads
            .iter()
            .filter_map(|h| proto.route_table(*h))
            .map(|t| t.destination_count())
            .sum();
        rows.push(Row::new(
            "recovery-after-failures",
            format!("failed={failures}"),
            Proto::Hvdb.name(),
            vec![
                (
                    "neighbors_expired".into(),
                    proto.counters().neighbors_expired as f64,
                ),
                (
                    "route_failovers".into(),
                    proto.counters().route_failovers as f64,
                ),
                (
                    "avg_destinations".into(),
                    dests as f64 / heads.len().max(1) as f64,
                ),
            ],
        ));
    }
    rows
}

/// A1: ablations over the design choices.
fn custom_a1(opts: &RunOpts) -> Vec<Row> {
    let base = Workload {
        seed: 4,
        ..Workload::default()
    };
    let base = if opts.smoke { base.smoke() } else { base };
    let run_with = |w: &Workload, tweak: &dyn Fn(&mut HvdbConfig)| {
        let mut scenario = w.build();
        tweak(&mut scenario.hvdb);
        let mut sim = Simulator::new(scenario.sim.clone(), scenario.hvdb_mobility());
        let mut proto = HvdbProtocol::new(
            scenario.hvdb.clone(),
            &scenario.members,
            scenario.traffic.clone(),
            vec![],
        );
        sim.run(&mut proto, scenario.until);
        // HT traffic spans both the content cycle and the refresh plane
        // (reclassified to "ht-refresh" for overhead accounting).
        let ht_bytes = sim.stats().bytes("ht-bcast") + sim.stats().bytes("ht-refresh");
        (metrics_of(sim.stats()), proto.counters(), ht_bytes)
    };
    let mut rows = Vec::new();
    // A1a — horizon k: route-table reach vs beacon cost.
    let ks: Vec<u32> = if opts.smoke {
        vec![2]
    } else {
        vec![1, 2, 4, 6]
    };
    for k in ks {
        let (m, c, _) = run_with(&base, &|cfg| cfg.k = k);
        let mut metrics = m.metric_pairs();
        metrics.push(("no_route".into(), c.no_route as f64));
        rows.push(Row::new(
            "horizon-k",
            format!("k={k}"),
            Proto::Hvdb.name(),
            metrics,
        ));
    }
    // A1b — hypercube dimension (paper suggests 3..6).
    let dims: Vec<u8> = if opts.smoke {
        vec![4]
    } else {
        vec![3, 4, 5, 6]
    };
    for dim in dims {
        let w = Workload {
            dim,
            vc_side: 8,
            ..base.clone()
        };
        let (m, _, _) = run_with(&w, &|_| {});
        rows.push(Row::new(
            "dimension",
            format!("dim={dim}"),
            Proto::Hvdb.name(),
            m.metric_pairs(),
        ));
    }
    // A1c — multicast-tree caching (§4.3).
    let heavy = Workload {
        packets_per_group: if opts.smoke { 2 } else { 30 },
        ..base.clone()
    };
    for cache in [true, false] {
        let (m, c, _) = run_with(&heavy, &|cfg| cfg.cache_trees = cache);
        let mut metrics = m.metric_pairs();
        metrics.push(("trees_built".into(), c.trees_built as f64));
        metrics.push(("tree_cache_hits".into(), c.tree_cache_hits as f64));
        rows.push(Row::new(
            "tree-caching",
            format!("cache={cache}"),
            Proto::Hvdb.name(),
            metrics,
        ));
    }
    // A1d — designated-broadcaster criterion (§4.2).
    for (name, crit) in [
        ("most-groups", DesignationCriterion::MostGroups),
        (
            "neighborhood-groups",
            DesignationCriterion::NeighborhoodGroups,
        ),
    ] {
        let (m, c, ht_bytes) = run_with(&base, &move |cfg| cfg.designation = crit);
        let mut metrics = m.metric_pairs();
        metrics.push(("ht_broadcasts".into(), c.ht_broadcasts as f64));
        metrics.push(("ht_bytes".into(), ht_bytes as f64));
        rows.push(Row::new(
            "designation-criterion",
            name,
            Proto::Hvdb.name(),
            metrics,
        ));
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::scaled_vc_side;

    /// Beyond the historical trajectory points, the derived grid must
    /// keep every VC's diagonal inside the 450 m radio range (a member
    /// in one corner must hear a head in the opposite corner) and stay
    /// a multiple of 4 for the 2x2-region hypercube map.
    #[test]
    fn derived_grids_keep_vc_diagonal_in_radio_range() {
        for nodes in [2001usize, 5000, 10000, 20000, 50000, 100000] {
            let side = (nodes as f64 * 8533.0).sqrt();
            let vc = scaled_vc_side(nodes);
            assert_eq!(vc % 4, 0, "{nodes} nodes: vc_side {vc} not 4-aligned");
            let cell = side / vc as f64;
            assert!(
                cell * std::f64::consts::SQRT_2 <= 450.0,
                "{nodes} nodes: cell {cell:.1} m diagonal exceeds radio range"
            );
        }
        assert_eq!(scaled_vc_side(500), 8);
        assert_eq!(scaled_vc_side(2000), 12);
        assert_eq!(scaled_vc_side(20000), 44);
        assert_eq!(scaled_vc_side(100000), 92);
    }
}
