//! Registry smoke coverage: every registered scenario constructs, runs a
//! ~1-second shrunk simulation, produces non-empty uniform rows and
//! serializes to a report that passes the strict schema validator — the
//! same validator `hvdb-bench validate` and the CI bench-regression job
//! apply to full runs, so the contract is enforced end to end.

use hvdb_bench::scenario::{registry, run_scenario, RunOpts};
use hvdb_bench::validate::{metric_of, validate_report_str};

#[test]
fn every_scenario_smokes_and_validates() {
    let opts = RunOpts {
        smoke: true,
        ..RunOpts::default()
    };
    let defs = registry();
    assert!(defs.len() >= 15, "registry lost scenarios: {}", defs.len());
    for def in &defs {
        let report = run_scenario(def, &opts);
        assert_eq!(report.scenario, def.name);
        assert!(report.smoke);
        assert!(
            !report.rows.is_empty(),
            "scenario {} produced no rows",
            def.name
        );
        for row in &report.rows {
            assert!(!row.sweep.is_empty(), "{}: empty sweep name", def.name);
            assert!(!row.label.is_empty(), "{}: empty label", def.name);
            assert!(
                !row.metrics.is_empty(),
                "{}: row {}/{} has no metrics",
                def.name,
                row.sweep,
                row.label
            );
        }
        let json = report.to_json().to_string();
        validate_report_str(&json)
            .unwrap_or_else(|e| panic!("{}: report failed strict validation: {e}", def.name));
    }
}

#[test]
fn loss_scenario_emits_the_gated_metrics() {
    // The CI gate reads frame-loss/loss=0.15/hvdb/delivery_worst; make
    // sure the scenario emits that exact coordinate even in smoke shape.
    let report = run_scenario(
        &hvdb_bench::scenario::find("loss").expect("loss scenario registered"),
        &RunOpts {
            smoke: true,
            seeds: None,
            ..RunOpts::default()
        },
    );
    let doc = validate_report_str(&report.to_json().to_string()).expect("valid report");
    assert!(
        metric_of(&doc, "frame-loss", "loss=0.15", "hvdb", "delivery_worst").is_some(),
        "loss report lost its gate coordinate"
    );
    assert!(metric_of(&doc, "frame-loss", "loss=0.15", "hvdb", "delivery").is_some());
}

#[test]
fn overhead_scenario_emits_the_gated_coordinates() {
    // The CI quiet-phase gate reads churn/churn=0/{hvdb-fixed,
    // hvdb-adaptive}/refresh_frames_per_s (plus the adaptive side's
    // control_frames_per_s ceiling); the scenario must emit those exact
    // coordinates even in smoke shape.
    let report = run_scenario(
        &hvdb_bench::scenario::find("overhead").expect("overhead scenario registered"),
        &RunOpts {
            smoke: true,
            seeds: None,
            ..RunOpts::default()
        },
    );
    let doc = validate_report_str(&report.to_json().to_string()).expect("valid report");
    for proto in ["hvdb-fixed", "hvdb-adaptive"] {
        assert!(
            metric_of(&doc, "churn", "churn=0", proto, "refresh_frames_per_s").is_some(),
            "overhead report lost its {proto} gate coordinate"
        );
    }
    assert!(metric_of(
        &doc,
        "churn",
        "churn=0",
        "hvdb-adaptive",
        "control_frames_per_s"
    )
    .is_some());
}

#[test]
fn scale_scenario_emits_trajectory_metrics() {
    let report = run_scenario(
        &hvdb_bench::scenario::find("scale").expect("scale scenario registered"),
        &RunOpts {
            smoke: true,
            seeds: None,
            ..RunOpts::default()
        },
    );
    let doc = validate_report_str(&report.to_json().to_string()).expect("valid report");
    // Every row must carry the trajectory-gated metrics.
    for label in ["nodes=30", "nodes=40"] {
        for metric in ["delivery", "control_bytes_per_node", "control_frames_per_s"] {
            assert!(
                metric_of(&doc, "network-size", label, "hvdb", metric).is_some(),
                "scale report lost {label}/{metric}"
            );
        }
    }
}

#[test]
fn scenario_names_are_unique_and_cli_safe() {
    let defs = registry();
    let mut names: Vec<&str> = defs.iter().map(|d| d.name).collect();
    names.sort_unstable();
    let before = names.len();
    names.dedup();
    assert_eq!(before, names.len(), "duplicate scenario names");
    for name in names {
        assert!(
            name.chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_'),
            "scenario name {name:?} is not filename-safe"
        );
    }
}
