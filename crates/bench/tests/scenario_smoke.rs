//! Registry smoke coverage: every registered scenario constructs, runs a
//! ~1-second shrunk simulation, produces non-empty uniform rows and
//! serializes to valid JSON. This is the contract the CLI and the
//! `BENCH_<scenario>.json` trajectory depend on.

use hvdb_bench::scenario::{registry, run_scenario, RunOpts};

#[test]
fn every_scenario_smokes_and_serializes() {
    let opts = RunOpts {
        smoke: true,
        seeds: None,
    };
    let defs = registry();
    assert!(defs.len() >= 11, "registry lost scenarios: {}", defs.len());
    for def in &defs {
        let report = run_scenario(def, &opts);
        assert_eq!(report.scenario, def.name);
        assert!(report.smoke);
        assert!(
            !report.rows.is_empty(),
            "scenario {} produced no rows",
            def.name
        );
        for row in &report.rows {
            assert!(!row.sweep.is_empty(), "{}: empty sweep name", def.name);
            assert!(!row.label.is_empty(), "{}: empty label", def.name);
            assert!(
                !row.metrics.is_empty(),
                "{}: row {}/{} has no metrics",
                def.name,
                row.sweep,
                row.label
            );
        }
        let json = report.to_json().to_string();
        let mut p = JsonParser {
            bytes: json.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        p.value()
            .unwrap_or_else(|e| panic!("{}: invalid JSON at byte {}: {e}", def.name, p.pos));
        p.skip_ws();
        assert_eq!(
            p.pos,
            p.bytes.len(),
            "{}: trailing garbage after JSON document",
            def.name
        );
    }
}

#[test]
fn scenario_names_are_unique_and_cli_safe() {
    let defs = registry();
    let mut names: Vec<&str> = defs.iter().map(|d| d.name).collect();
    names.sort_unstable();
    let before = names.len();
    names.dedup();
    assert_eq!(before, names.len(), "duplicate scenario names");
    for name in names {
        assert!(
            name.chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_'),
            "scenario name {name:?} is not filename-safe"
        );
    }
}

/// A strict little recursive-descent JSON parser — enough to validate
/// that the reports are standard JSON (the writer is hand-rolled, so the
/// tests must not trust it).
struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        match self.bump() {
            Some(got) if got == b => Ok(()),
            got => Err(format!(
                "expected {:?}, got {:?}",
                b as char,
                got.map(|g| g as char)
            )),
        }
    }

    fn value(&mut self) -> Result<(), String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?}")),
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        for &b in lit.as_bytes() {
            self.expect(b)?;
        }
        Ok(())
    }

    fn object(&mut self) -> Result<(), String> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.value()?;
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(()),
                got => return Err(format!("in object: got {got:?}")),
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.value()?;
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(()),
                got => return Err(format!("in array: got {got:?}")),
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.expect(b'"')?;
        loop {
            match self.bump() {
                Some(b'"') => return Ok(()),
                Some(b'\\') => match self.bump() {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {}
                    Some(b'u') => {
                        for _ in 0..4 {
                            match self.bump() {
                                Some(h) if h.is_ascii_hexdigit() => {}
                                got => return Err(format!("bad \\u escape: {got:?}")),
                            }
                        }
                    }
                    got => return Err(format!("bad escape: {got:?}")),
                },
                Some(c) if c < 0x20 => return Err("raw control char in string".into()),
                Some(_) => {}
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn number(&mut self) -> Result<(), String> {
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut digits = 0;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
            digits += 1;
        }
        if digits == 0 {
            return Err("number with no digits".into());
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let mut frac = 0;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
                frac += 1;
            }
            if frac == 0 {
                return Err("fraction with no digits".into());
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let mut exp = 0;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
                exp += 1;
            }
            if exp == 0 {
                return Err("exponent with no digits".into());
            }
        }
        Ok(())
    }
}
