//! Multi-group session scripting: a [`TrafficSpec`] describes *shaped*
//! offered load — how many concurrent flows per group, each flow's
//! arrival process and rate, payload size, and how group sessions
//! stagger their starts — and [`TrafficSpec::schedule`] expands it into
//! a deterministic per-packet schedule.
//!
//! A **flow** is one source streaming to one group for the whole
//! window: flow ids are dense (`group * flows_per_group + f`), and each
//! flow's packets carry consecutive sequence numbers in send order, so
//! the measurement side ([`crate::FlowSet`]) can track goodput and
//! per-flow latency/jitter without per-packet records. Every flow draws
//! its arrivals from its own seeded stream ([`crate::flow_seed`]):
//! schedules are bit-identical across runs and insensitive to flow
//! reordering.

use crate::rng::{flow_seed, Rng64};
use crate::source::SourceModel;

/// One scheduled packet of a flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowPacket {
    /// Dense flow id (`group * flows_per_group + f`).
    pub flow: u32,
    /// Per-flow sequence number, consecutive from 0 in send order.
    pub seq: u32,
    /// Destination group index, `0..groups`.
    pub group: u32,
    /// Send offset from the window start, microseconds.
    pub at_us: u64,
    /// Payload bytes.
    pub size: usize,
}

/// A declarative description of shaped multi-group offered load.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficSpec {
    /// Concurrent flows per group.
    pub flows_per_group: u32,
    /// Per-flow mean rate, packets per second.
    pub rate_pps: f64,
    /// Payload bytes per packet.
    pub payload: usize,
    /// Arrival process of every flow.
    pub model: SourceModel,
    /// Session stagger: group `g`'s flows start `g * stagger` after the
    /// window opens (staggered joins; 0 = all groups start together).
    pub group_stagger_us: u64,
}

impl TrafficSpec {
    /// Total flow count over `groups` groups.
    pub fn flow_count(&self, groups: usize) -> u32 {
        groups as u32 * self.flows_per_group
    }

    /// Total offered load in packets per second once every group's
    /// session is active.
    pub fn offered_pps(&self, groups: usize) -> f64 {
        self.flow_count(groups) as f64 * self.rate_pps
    }

    /// Expands the spec into the deterministic packet schedule for
    /// `groups` groups over a `window_us` window under `seed`. Packets
    /// are ordered by `(at_us, flow)`; each flow's sequence numbers are
    /// consecutive in time order.
    pub fn schedule(&self, groups: usize, window_us: u64, seed: u64) -> Vec<FlowPacket> {
        let mut out = Vec::new();
        for g in 0..groups as u32 {
            let start = (g as u64).saturating_mul(self.group_stagger_us);
            if start >= window_us {
                continue; // this session never opens inside the window
            }
            for f in 0..self.flows_per_group {
                let flow = g * self.flows_per_group + f;
                let mut rng = Rng64::new(flow_seed(seed, flow));
                let arrivals = self
                    .model
                    .arrivals_us(self.rate_pps, window_us - start, &mut rng);
                for (seq, at) in arrivals.into_iter().enumerate() {
                    out.push(FlowPacket {
                        flow,
                        seq: seq as u32,
                        group: g,
                        at_us: start + at,
                        size: self.payload,
                    });
                }
            }
        }
        out.sort_unstable_by_key(|p| (p.at_us, p.flow));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> TrafficSpec {
        TrafficSpec {
            flows_per_group: 2,
            rate_pps: 50.0,
            payload: 256,
            model: SourceModel::Poisson,
            group_stagger_us: 100_000,
        }
    }

    #[test]
    fn schedule_is_deterministic() {
        let a = spec().schedule(3, 2_000_000, 42);
        let b = spec().schedule(3, 2_000_000, 42);
        assert_eq!(a, b);
        assert_ne!(a, spec().schedule(3, 2_000_000, 43));
    }

    #[test]
    fn flows_are_dense_and_sequenced() {
        let s = spec();
        let sched = s.schedule(3, 2_000_000, 7);
        assert_eq!(s.flow_count(3), 6);
        for flow in 0..6u32 {
            let pkts: Vec<&FlowPacket> = sched.iter().filter(|p| p.flow == flow).collect();
            assert!(!pkts.is_empty(), "flow {flow} scheduled nothing");
            // Consecutive seqs in time order.
            let mut sorted = pkts.clone();
            sorted.sort_by_key(|p| p.at_us);
            for (i, p) in sorted.iter().enumerate() {
                assert_eq!(p.seq, i as u32);
                assert_eq!(p.group, flow / 2);
                assert_eq!(p.size, 256);
            }
        }
    }

    #[test]
    fn sessions_stagger_by_group() {
        let sched = spec().schedule(3, 2_000_000, 9);
        for p in &sched {
            assert!(p.at_us >= p.group as u64 * 100_000, "{p:?}");
            assert!(p.at_us < 2_000_000);
        }
        // A stagger beyond the window drops the late groups entirely.
        let mut s = spec();
        s.group_stagger_us = 3_000_000;
        let sched = s.schedule(3, 2_000_000, 9);
        assert!(sched.iter().all(|p| p.group == 0));
    }

    #[test]
    fn reordering_flow_generation_does_not_change_a_flow() {
        // Flow 3's packets are identical whether 2 or 5 groups exist,
        // because each flow draws from its own seeded stream.
        let two = spec().schedule(2, 1_000_000, 5);
        let five = spec().schedule(5, 1_000_000, 5);
        let pick = |sched: &[FlowPacket]| -> Vec<FlowPacket> {
            sched.iter().filter(|p| p.flow == 3).copied().collect()
        };
        assert_eq!(pick(&two), pick(&five));
    }

    #[test]
    fn offered_pps_is_flows_times_rate() {
        assert_eq!(spec().offered_pps(3), 6.0 * 50.0);
    }
}
