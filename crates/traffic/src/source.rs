//! Application-level traffic source models.
//!
//! A [`SourceModel`] turns a target rate and a window into a
//! deterministic arrival-time sequence, drawing only from the caller's
//! [`Rng64`] stream — the same `(model, rate, window, seed)` always
//! yields the same schedule. Three classic shapes:
//!
//! * **CBR** — constant bit rate: fixed inter-packet gap with a random
//!   initial phase (so concurrent flows desynchronise instead of
//!   colliding every period);
//! * **Poisson** — memoryless arrivals at the given mean rate;
//! * **on/off** — bursty: exponentially distributed on and off periods,
//!   CBR at an elevated peak rate during on periods, silent otherwise,
//!   with the peak chosen so the *long-run mean* equals the target rate
//!   (the standard interrupted-Poisson/CBR burst model).

use crate::rng::Rng64;

/// An arrival process shape.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SourceModel {
    /// Constant bit rate: one packet every `1/rate` seconds.
    Cbr,
    /// Poisson arrivals with mean rate `rate`.
    Poisson,
    /// Bursty on/off: exponential on/off periods with the given means
    /// (seconds), CBR during on periods at `rate * (on + off) / on`.
    OnOff {
        /// Mean on-period length in seconds.
        mean_on_s: f64,
        /// Mean off-period length in seconds.
        mean_off_s: f64,
    },
}

impl SourceModel {
    /// The arrival offsets (microseconds, strictly increasing, all `<
    /// window_us`) of one flow at `rate_pps` packets per second over a
    /// window, drawn from `rng`. Returns an empty schedule for
    /// non-positive rates or an empty window.
    pub fn arrivals_us(&self, rate_pps: f64, window_us: u64, rng: &mut Rng64) -> Vec<u64> {
        if rate_pps <= 0.0 || window_us == 0 {
            return Vec::new();
        }
        let mean_gap = 1e6 / rate_pps;
        let mut out = Vec::new();
        let push = |t: f64, out: &mut Vec<u64>| -> bool {
            if t >= window_us as f64 {
                return false;
            }
            // Strictly increasing integer times: sub-microsecond gaps
            // collapse onto consecutive microseconds.
            let t = (t as u64).max(out.last().map_or(0, |l| l + 1));
            if t >= window_us {
                return false;
            }
            out.push(t);
            true
        };
        match self {
            SourceModel::Cbr => {
                let mut t = rng.unit() * mean_gap;
                while push(t, &mut out) {
                    t += mean_gap;
                }
            }
            SourceModel::Poisson => {
                let mut t = rng.exponential(mean_gap);
                while push(t, &mut out) {
                    t += rng.exponential(mean_gap);
                }
            }
            SourceModel::OnOff {
                mean_on_s,
                mean_off_s,
            } => {
                let on_us = (mean_on_s.max(1e-6)) * 1e6;
                let off_us = (mean_off_s.max(0.0)) * 1e6;
                // Peak gap so the long-run mean rate hits the target.
                let peak_gap = mean_gap * on_us / (on_us + off_us);
                let mut cycle_start = 0.0f64;
                while cycle_start < window_us as f64 {
                    let on_len = rng.exponential(on_us);
                    let off_len = rng.exponential(off_us.max(1e-6));
                    let mut t = cycle_start + rng.unit() * peak_gap;
                    while t < cycle_start + on_len {
                        if !push(t, &mut out) && t >= window_us as f64 {
                            return out;
                        }
                        t += peak_gap;
                    }
                    cycle_start += on_len + off_len;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gaps(a: &[u64]) -> Vec<u64> {
        a.windows(2).map(|w| w[1] - w[0]).collect()
    }

    #[test]
    fn cbr_is_evenly_spaced() {
        let mut rng = Rng64::new(1);
        let a = SourceModel::Cbr.arrivals_us(100.0, 1_000_000, &mut rng);
        // 100 pps over 1 s: 100 packets, gaps all ~10 ms.
        assert!((99..=101).contains(&a.len()), "{}", a.len());
        for g in gaps(&a) {
            assert!((9_999..=10_001).contains(&g), "gap {g}");
        }
    }

    #[test]
    fn poisson_hits_mean_rate() {
        let mut rng = Rng64::new(2);
        let a = SourceModel::Poisson.arrivals_us(200.0, 10_000_000, &mut rng);
        // 200 pps over 10 s: ~2000 packets (±10%).
        assert!((1800..=2200).contains(&a.len()), "{}", a.len());
        // Memoryless: gap variance far above CBR's zero.
        let g = gaps(&a);
        let mean = g.iter().sum::<u64>() as f64 / g.len() as f64;
        let var = g.iter().map(|&x| (x as f64 - mean).powi(2)).sum::<f64>() / g.len() as f64;
        assert!(var.sqrt() > mean * 0.5, "std {} mean {mean}", var.sqrt());
    }

    #[test]
    fn onoff_hits_mean_rate_but_bursts() {
        let mut rng = Rng64::new(3);
        let model = SourceModel::OnOff {
            mean_on_s: 0.5,
            mean_off_s: 0.5,
        };
        let a = model.arrivals_us(200.0, 20_000_000, &mut rng);
        // Long-run mean ~200 pps over 20 s (±20% — bursty by design).
        let n = a.len() as f64;
        assert!((3200.0..=4800.0).contains(&n), "{n}");
        // Bursty: some gaps are much longer than the mean gap.
        let g = gaps(&a);
        let max = *g.iter().max().unwrap();
        assert!(max > 50_000, "max gap {max} — no off periods seen");
    }

    #[test]
    fn arrivals_are_strictly_increasing_and_windowed() {
        for model in [
            SourceModel::Cbr,
            SourceModel::Poisson,
            SourceModel::OnOff {
                mean_on_s: 0.1,
                mean_off_s: 0.2,
            },
        ] {
            let mut rng = Rng64::new(9);
            let a = model.arrivals_us(5000.0, 500_000, &mut rng);
            assert!(!a.is_empty());
            assert!(a.windows(2).all(|w| w[0] < w[1]), "{model:?}");
            assert!(a.iter().all(|&t| t < 500_000), "{model:?}");
        }
    }

    #[test]
    fn degenerate_inputs_yield_empty_schedules() {
        let mut rng = Rng64::new(4);
        assert!(SourceModel::Cbr
            .arrivals_us(0.0, 1_000_000, &mut rng)
            .is_empty());
        assert!(SourceModel::Cbr
            .arrivals_us(-1.0, 1_000_000, &mut rng)
            .is_empty());
        assert!(SourceModel::Poisson
            .arrivals_us(100.0, 0, &mut rng)
            .is_empty());
    }

    #[test]
    fn same_seed_same_schedule() {
        for model in [
            SourceModel::Cbr,
            SourceModel::Poisson,
            SourceModel::OnOff {
                mean_on_s: 0.3,
                mean_off_s: 0.7,
            },
        ] {
            let a = model.arrivals_us(123.0, 2_000_000, &mut Rng64::new(77));
            let b = model.arrivals_us(123.0, 2_000_000, &mut Rng64::new(77));
            assert_eq!(a, b, "{model:?}");
        }
    }
}
