//! Fixed-bucket log-scale histograms.
//!
//! [`LogHist`] records unsigned 64-bit samples (the stack uses
//! microseconds for latency/jitter, plain counts for hops) into a fixed
//! array of log₂ buckets with 16 sub-buckets per octave, HDR-histogram
//! style. Memory is a few kilobytes *regardless of sample count*, which
//! is what lets heavy traffic runs drop the per-packet delivery-record
//! vectors entirely:
//!
//! * the **mean is exact** (a running sum is kept alongside the
//!   buckets), so headline `latency_ms` metrics are unchanged by the
//!   migration;
//! * **quantiles are bucket-resolution**: the returned value is the
//!   bucket midpoint, within ±[`LogHist::RELATIVE_ERROR`] of the exact
//!   sample quantile (values below 16 are exact — those buckets are
//!   width one);
//! * **min and max are exact**, and quantile results are clamped to
//!   them, so p0/p100 round-trip exactly.

/// Values below this are binned exactly (one bucket per value).
const LINEAR_CUTOFF: u64 = 16;
/// Sub-buckets per octave above the linear range.
const SUB: usize = 16;
/// Largest binned exponent: values at or above `2^(MAX_EXP + 1)` share
/// one overflow bucket. `2^40` µs is ~12.7 days — far beyond any
/// simulated latency.
const MAX_EXP: u32 = 39;
/// Total bucket count: the linear range, `SUB` per octave from exponent
/// 4 through [`MAX_EXP`], and one overflow bucket.
const BUCKETS: usize = LINEAR_CUTOFF as usize + (MAX_EXP as usize - 4 + 1) * SUB + 1;

/// A fixed-bucket log-scale histogram of `u64` samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHist {
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for LogHist {
    fn default() -> Self {
        LogHist {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

fn bucket_of(v: u64) -> usize {
    if v < LINEAR_CUTOFF {
        v as usize
    } else {
        let exp = 63 - v.leading_zeros();
        if exp > MAX_EXP {
            BUCKETS - 1
        } else {
            let sub = ((v >> (exp - 4)) & 15) as usize;
            LINEAR_CUTOFF as usize + (exp as usize - 4) * SUB + sub
        }
    }
}

/// Half-open value range `[lo, hi)` of bucket `idx`.
fn bounds_of(idx: usize) -> (u64, u64) {
    if idx < LINEAR_CUTOFF as usize {
        (idx as u64, idx as u64 + 1)
    } else if idx == BUCKETS - 1 {
        (1u64 << (MAX_EXP + 1), u64::MAX)
    } else {
        let rel = idx - LINEAR_CUTOFF as usize;
        let exp = 4 + (rel / SUB) as u32;
        let sub = (rel % SUB) as u64;
        let lo = (LINEAR_CUTOFF + sub) << (exp - 4);
        (lo, lo + (1u64 << (exp - 4)))
    }
}

impl LogHist {
    /// Worst-case relative error of a quantile estimate in the log
    /// range: half a sub-bucket's width, `1 / (2 * 16)`.
    pub const RELATIVE_ERROR: f64 = 1.0 / (2.0 * SUB as f64);

    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_of(v)] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact sum of all samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Exact smallest sample, or `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Exact largest sample, or `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Exact mean, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// The `q`-quantile (0..=1) at bucket resolution: the midpoint of
    /// the bucket holding the rank-`round((n-1)·q)` sample (the same
    /// nearest-rank rule the pre-histogram sort-based quantile used),
    /// clamped to the exact observed `[min, max]`. `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((self.count - 1) as f64 * q.clamp(0.0, 1.0)).round() as u64;
        if rank == 0 {
            return Some(self.min);
        }
        if rank >= self.count - 1 {
            return Some(self.max);
        }
        let mut cum = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum > rank {
                let (lo, hi) = bounds_of(idx);
                let mid = lo + (hi - lo - 1) / 2;
                return Some(mid.clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LogHist) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// Iterates the non-empty buckets as `(lo, hi, count)` with `[lo,
    /// hi)` the bucket's value range — the export shape for reports.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, c)| **c > 0)
            .map(|(i, c)| {
                let (lo, hi) = bounds_of(i);
                (lo, hi, *c)
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_partition_the_value_space() {
        // Every bucket's hi is the next bucket's lo, and bucket_of maps
        // each bound into its own bucket.
        for idx in 0..BUCKETS - 1 {
            let (lo, hi) = bounds_of(idx);
            assert!(lo < hi, "bucket {idx}");
            assert_eq!(bucket_of(lo), idx, "lo of bucket {idx}");
            assert_eq!(bucket_of(hi - 1), idx, "hi-1 of bucket {idx}");
            assert_eq!(bounds_of(idx + 1).0, hi, "contiguity at {idx}");
        }
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = LogHist::new();
        for v in [0u64, 1, 3, 7, 15] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), Some(0));
        assert_eq!(h.quantile(0.5), Some(3));
        assert_eq!(h.quantile(1.0), Some(15));
        assert_eq!(h.mean(), Some(26.0 / 5.0));
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(15));
    }

    #[test]
    fn empty_hist_returns_none() {
        let h = LogHist::new();
        assert!(h.is_empty());
        assert_eq!(h.mean(), None);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
    }

    #[test]
    fn quantiles_within_relative_error() {
        let mut h = LogHist::new();
        let mut vals: Vec<u64> = (0..2000u64)
            .map(|i| (i * i * 37 + 100) % 5_000_000)
            .collect();
        for &v in &vals {
            h.record(v);
        }
        vals.sort_unstable();
        for q in [0.1, 0.5, 0.9, 0.99, 0.999] {
            let rank = ((vals.len() - 1) as f64 * q).round() as usize;
            let exact = vals[rank] as f64;
            let got = h.quantile(q).unwrap() as f64;
            let tol = exact * LogHist::RELATIVE_ERROR + 1.0;
            assert!(
                (got - exact).abs() <= tol,
                "q={q}: got {got}, exact {exact}, tol {tol}"
            );
        }
    }

    #[test]
    fn extremes_are_exact() {
        let mut h = LogHist::new();
        h.record(1_234_567);
        h.record(89);
        assert_eq!(h.quantile(0.0), Some(89));
        assert_eq!(h.quantile(1.0), Some(1_234_567));
    }

    #[test]
    fn merge_accumulates() {
        let mut a = LogHist::new();
        let mut b = LogHist::new();
        for v in [5u64, 500, 50_000] {
            a.record(v);
        }
        for v in [7u64, 700_000] {
            b.record(v);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.count(), 5);
        assert_eq!(merged.sum(), a.sum() + b.sum());
        assert_eq!(merged.min(), Some(5));
        assert_eq!(merged.max(), Some(700_000));
        assert_eq!(merged.buckets().map(|(.., c)| c).sum::<u64>(), 5);
        // Merging an empty histogram changes nothing.
        let before = merged.clone();
        merged.merge(&LogHist::new());
        assert_eq!(merged, before);
    }

    #[test]
    fn overflow_bucket_catches_huge_samples() {
        let mut h = LogHist::new();
        h.record(u64::MAX);
        h.record(1u64 << 45);
        assert_eq!(h.count(), 2);
        // Quantiles stay clamped to the exact max.
        assert_eq!(h.quantile(1.0), Some(u64::MAX));
    }
}
