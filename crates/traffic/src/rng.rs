//! Self-contained deterministic randomness for traffic generation.
//!
//! Every flow draws from its own [`Rng64`] stream seeded by
//! [`flow_seed`], so adding a flow — or reordering flow generation —
//! never perturbs the arrival times of any other flow. The generator is
//! SplitMix64: tiny, fast, and fully specified here so schedules are
//! reproducible independent of any external RNG crate.

/// A SplitMix64 stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rng64 {
    state: u64,
}

impl Rng64 {
    /// Creates a stream from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        Rng64 { state: seed }
    }

    /// The next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)` (53 mantissa bits).
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Exponentially distributed draw with the given mean (Poisson
    /// inter-arrival times, on/off burst durations). Always positive.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0);
        // 1 - unit() is in (0, 1]; ln of it is finite and <= 0.
        -mean * (1.0 - self.unit()).ln()
    }

    /// Uniform `u64` in `[lo, hi)` (returns `lo` when the range is empty).
    /// Plain modulo reduction: the spans drawn in simulation (jitter
    /// windows of a few hundred microseconds) are vanishingly small
    /// against 2^64, so the bias is immaterial — and the reduction is
    /// branch-free, which matters on the per-frame hot path.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        if lo >= hi {
            return lo;
        }
        lo + self.next_u64() % (hi - lo)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.unit() < p
        }
    }
}

/// The seed of flow `flow`'s private stream under master seed `master`.
/// Mixes the flow id through one SplitMix64 round so consecutive flow
/// ids land in unrelated regions of the state space.
pub fn flow_seed(master: u64, flow: u32) -> u64 {
    let mut r = Rng64::new(master ^ (flow as u64).wrapping_mul(0xA24B_AED4_963E_E407));
    r.next_u64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng64::new(42);
        let mut b = Rng64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_in_range_and_varied() {
        let mut r = Rng64::new(7);
        let draws: Vec<f64> = (0..1000).map(|_| r.unit()).collect();
        assert!(draws.iter().all(|u| (0.0..1.0).contains(u)));
        let mean = draws.iter().sum::<f64>() / draws.len() as f64;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn exponential_mean_roughly_correct() {
        let mut r = Rng64::new(99);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| r.exponential(3.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 3.0).abs() < 0.15, "mean {mean}");
    }

    #[test]
    fn range_u64_respects_bounds() {
        let mut r = Rng64::new(17);
        for _ in 0..1000 {
            let v = r.range_u64(10, 20);
            assert!((10..20).contains(&v));
        }
        assert_eq!(r.range_u64(5, 5), 5, "empty range returns lo");
        assert_eq!(r.range_u64(9, 3), 9, "inverted range returns lo");
    }

    #[test]
    fn chance_extremes() {
        let mut r = Rng64::new(23);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-0.5));
        assert!(r.chance(1.5));
    }

    #[test]
    fn flow_seeds_differ_per_flow_and_master() {
        assert_ne!(flow_seed(1, 0), flow_seed(1, 1));
        assert_ne!(flow_seed(1, 0), flow_seed(2, 0));
        assert_eq!(flow_seed(5, 3), flow_seed(5, 3));
    }
}
