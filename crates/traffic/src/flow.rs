//! Per-flow measurement: sequence/goodput tracking and
//! latency/jitter/hop-count histograms.
//!
//! A [`FlowSet`] is the measurement side of the traffic plane: the
//! simulator registers each sent packet under its flow id and feeds
//! every delivery back with its end-to-end latency and hop count. All
//! accounting is histogram-backed ([`crate::LogHist`]) plus a handful
//! of counters — memory is proportional to the *flow* count, never the
//! packet count, which is what lets heavy runs drop per-packet delivery
//! records.
//!
//! Jitter follows the RFC 3550 idea: for each `(flow, receiver)` pair
//! the sample is the absolute difference between consecutive
//! deliveries' latencies — the receiver-observed delay variation a
//! playout buffer must absorb.

use crate::hist::LogHist;
use rustc_hash::FxHashMap;

/// Flow id meaning "not tracked" (legacy scripted traffic).
pub const FLOW_NONE: u32 = u32::MAX;

/// One flow's accumulated measurements.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FlowStats {
    /// Packets originated by the flow's source.
    pub sent: u64,
    /// Distinct `(packet, receiver)` deliveries recorded.
    pub delivered: u64,
    /// Deliveries that arrived behind a higher sequence number the same
    /// receiver had already seen — per-receiver reordering, the playout
    /// disruption jitter alone cannot show.
    pub reordered: u64,
    /// End-to-end delivery latency, microseconds.
    pub latency: LogHist,
    /// Receiver-observed delay variation (|Δ latency| between a
    /// receiver's consecutive deliveries of this flow), microseconds.
    pub jitter: LogHist,
    /// Physical hops traversed per delivery.
    pub hops: LogHist,
    /// Per receiver: last observed latency (jitter state) and highest
    /// delivered sequence number (reorder state).
    last: FxHashMap<u32, (u64, u32)>,
}

/// Per-flow measurement over a dense flow-id space.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FlowSet {
    flows: Vec<FlowStats>,
}

impl FlowSet {
    /// Creates an empty set (flows materialise on first use).
    pub fn new() -> Self {
        Self::default()
    }

    fn ensure(&mut self, flow: u32) -> &mut FlowStats {
        let idx = flow as usize;
        if idx >= self.flows.len() {
            self.flows.resize_with(idx + 1, FlowStats::default);
        }
        &mut self.flows[idx]
    }

    /// Records one packet originated by `flow`. [`FLOW_NONE`] is a
    /// no-op, so untracked legacy traffic costs nothing.
    pub fn record_send(&mut self, flow: u32) {
        if flow != FLOW_NONE {
            self.ensure(flow).sent += 1;
        }
    }

    /// Records one delivery of the `seq`-th packet of `flow` at
    /// `receiver` after `latency_us`, having crossed `hops` physical
    /// hops. No-op for [`FLOW_NONE`].
    pub fn record_delivery(
        &mut self,
        flow: u32,
        receiver: u32,
        seq: u32,
        latency_us: u64,
        hops: u32,
    ) {
        if flow == FLOW_NONE {
            return;
        }
        let f = self.ensure(flow);
        f.delivered += 1;
        f.latency.record(latency_us);
        f.hops.record(hops as u64);
        if let Some((prev_lat, prev_seq)) = f.last.insert(receiver, (latency_us, seq)) {
            f.jitter.record(prev_lat.abs_diff(latency_us));
            if seq < prev_seq {
                f.reordered += 1;
                // Keep the high-water mark: one straggler must not
                // mark every following in-order packet reordered.
                f.last.insert(receiver, (latency_us, prev_seq));
            }
        }
    }

    /// Number of materialised flows (highest seen id + 1).
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// Whether no flow was ever touched.
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    /// One flow's stats, if materialised.
    pub fn get(&self, flow: u32) -> Option<&FlowStats> {
        self.flows.get(flow as usize)
    }

    /// Iterates `(flow id, stats)` in id order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &FlowStats)> {
        self.flows.iter().enumerate().map(|(i, f)| (i as u32, f))
    }

    /// Total packets sent across flows.
    pub fn total_sent(&self) -> u64 {
        self.flows.iter().map(|f| f.sent).sum()
    }

    /// Total deliveries across flows.
    pub fn total_delivered(&self) -> u64 {
        self.flows.iter().map(|f| f.delivered).sum()
    }

    /// Total out-of-order deliveries across flows.
    pub fn total_reordered(&self) -> u64 {
        self.flows.iter().map(|f| f.reordered).sum()
    }

    /// All flows' latency samples merged into one histogram.
    pub fn merged_latency(&self) -> LogHist {
        let mut h = LogHist::new();
        for f in &self.flows {
            h.merge(&f.latency);
        }
        h
    }

    /// All flows' jitter samples merged into one histogram.
    pub fn merged_jitter(&self) -> LogHist {
        let mut h = LogHist::new();
        for f in &self.flows {
            h.merge(&f.jitter);
        }
        h
    }

    /// All flows' hop-count samples merged into one histogram.
    pub fn merged_hops(&self) -> LogHist {
        let mut h = LogHist::new();
        for f in &self.flows {
            h.merge(&f.hops);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_flow_is_free() {
        let mut s = FlowSet::new();
        s.record_send(FLOW_NONE);
        s.record_delivery(FLOW_NONE, 1, 0, 100, 2);
        assert!(s.is_empty());
        assert_eq!(s.total_sent(), 0);
    }

    #[test]
    fn sends_and_deliveries_accumulate_per_flow() {
        let mut s = FlowSet::new();
        s.record_send(0);
        s.record_send(0);
        s.record_send(2);
        s.record_delivery(0, 7, 0, 1000, 3);
        s.record_delivery(2, 7, 0, 2000, 5);
        assert_eq!(s.len(), 3);
        assert_eq!(s.get(0).unwrap().sent, 2);
        assert_eq!(s.get(1).unwrap().sent, 0); // hole materialised empty
        assert_eq!(s.get(2).unwrap().delivered, 1);
        assert_eq!(s.total_sent(), 3);
        assert_eq!(s.total_delivered(), 2);
        assert_eq!(s.merged_latency().count(), 2);
        assert_eq!(s.merged_hops().quantile(1.0), Some(5));
    }

    #[test]
    fn jitter_is_per_receiver_latency_variation() {
        let mut s = FlowSet::new();
        // Receiver 1: latencies 1000, 1300, 1100 → jitter samples 300, 200.
        s.record_delivery(0, 1, 0, 1000, 1);
        s.record_delivery(0, 1, 1, 1300, 1);
        s.record_delivery(0, 1, 2, 1100, 1);
        // Receiver 2's first delivery contributes no jitter sample.
        s.record_delivery(0, 2, 0, 9000, 1);
        let f = s.get(0).unwrap();
        assert_eq!(f.jitter.count(), 2);
        assert_eq!(f.jitter.min(), Some(200));
        assert_eq!(f.jitter.max(), Some(300));
        assert_eq!(s.merged_jitter().count(), 2);
        assert_eq!(f.reordered, 0);
    }

    #[test]
    fn reordering_is_counted_per_receiver_against_the_high_water_mark() {
        let mut s = FlowSet::new();
        // Receiver 1 sees seqs 0, 2, 1, 3: exactly one reorder (the
        // straggling 1); the in-order 3 after it is not penalised.
        s.record_delivery(0, 1, 0, 100, 1);
        s.record_delivery(0, 1, 2, 100, 1);
        s.record_delivery(0, 1, 1, 100, 1);
        s.record_delivery(0, 1, 3, 100, 1);
        // Receiver 2 sees everything in order: no reorders.
        for seq in 0..4 {
            s.record_delivery(0, 2, seq, 100, 1);
        }
        assert_eq!(s.get(0).unwrap().reordered, 1);
        assert_eq!(s.total_reordered(), 1);
    }
}
