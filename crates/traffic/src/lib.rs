//! # hvdb-traffic — the deterministic traffic plane
//!
//! Application-level load generation and flow-level measurement for the
//! HVDB reproduction, designed for **heavy** runs: offered load is
//! scripted from seeded per-flow RNG streams (bit-identical replays),
//! and measurement is histogram-backed (fixed-size log-scale buckets)
//! so a million-delivery run costs a few kilobytes of accounting instead
//! of a per-packet record vector.
//!
//! The crate sits *below* the simulator on purpose: it knows nothing of
//! nodes, radios or protocols. It deals in plain `u64` microseconds,
//! `u32` flow/receiver ids and packet counts, so `hvdb-sim` can embed
//! its histograms in the engine statistics and `hvdb-bench` can script
//! workloads from its sources without a dependency cycle.
//!
//! * [`rng`] — a self-contained SplitMix64 stream, one per flow;
//! * [`hist`] — [`LogHist`]: fixed-bucket log₂ histograms with exact
//!   mean and bucket-resolution quantiles;
//! * [`source`] — [`SourceModel`]: CBR, Poisson and bursty on/off
//!   arrival processes;
//! * [`spec`] — [`TrafficSpec`]: multi-group, multi-flow session
//!   scripting producing a deterministic packet schedule;
//! * [`flow`] — [`FlowSet`]: per-flow sequence/goodput tracking plus
//!   latency, inter-arrival jitter and hop-count histograms.

#![warn(missing_docs)]

pub mod flow;
pub mod hist;
pub mod rng;
pub mod source;
pub mod spec;

pub use flow::{FlowSet, FlowStats, FLOW_NONE};
pub use hist::LogHist;
pub use rng::{flow_seed, Rng64};
pub use source::SourceModel;
pub use spec::{FlowPacket, TrafficSpec};
