//! Property tests for the traffic plane.
//!
//! The histogram migration's safety argument lives here: on arbitrary
//! delivery sequences, histogram-derived mean/p50/p99 must match the
//! exact per-record values within the documented bucket tolerance —
//! that is the contract that lets `hvdb-sim` drop its per-packet
//! delivery records. Alongside it, the determinism contract of the load
//! generators: the same seeded spec always expands to the same flow
//! sequences.

use hvdb_traffic::{LogHist, SourceModel, TrafficSpec};
use proptest::prelude::*;

fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[rank]
}

proptest! {
    /// Histogram mean is exact and p50/p99 stay within one bucket of the
    /// exact sorted-sample quantile, for random delivery sequences
    /// spanning microseconds to minutes.
    #[test]
    fn hist_matches_exact_stats_within_bucket_tolerance(
        raw in proptest::collection::vec((0u64..60_000_000, 1u64..1000), 1..300)
    ) {
        // Spread the samples: multiply base by a varying factor so runs
        // cover several octaves.
        let samples: Vec<u64> = raw.iter().map(|(base, k)| base / k).collect();
        let mut h = LogHist::new();
        for &s in &samples {
            h.record(s);
        }
        // Mean: exact (running sum), not bucketised.
        let exact_mean = samples.iter().map(|&s| s as f64).sum::<f64>() / samples.len() as f64;
        let got_mean = h.mean().unwrap();
        prop_assert!((got_mean - exact_mean).abs() < 1e-6, "mean {got_mean} vs {exact_mean}");
        // Quantiles: within the documented relative bucket error.
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for q in [0.5, 0.99] {
            let exact = exact_quantile(&sorted, q) as f64;
            let got = h.quantile(q).unwrap() as f64;
            let tol = exact * LogHist::RELATIVE_ERROR + 1.0;
            prop_assert!(
                (got - exact).abs() <= tol,
                "q={q}: hist {got} vs exact {exact} (tol {tol})"
            );
        }
        // Extremes are exact.
        prop_assert_eq!(h.quantile(0.0), Some(sorted[0]));
        prop_assert_eq!(h.quantile(1.0), Some(*sorted.last().unwrap()));
        prop_assert_eq!(h.count(), samples.len() as u64);
    }

    /// Two expansions of the same seeded traffic spec produce identical
    /// flow sequences (packet-for-packet), and per-flow sequence numbers
    /// are consecutive in time order — the replay contract of the
    /// deterministic traffic plane.
    #[test]
    fn seeded_specs_expand_identically(
        seed in any::<u64>(),
        groups in 1usize..4,
        flows in 1u32..4,
        rate in 1.0f64..400.0,
        model_pick in 0u8..3,
    ) {
        let model = match model_pick {
            0 => SourceModel::Cbr,
            1 => SourceModel::Poisson,
            _ => SourceModel::OnOff { mean_on_s: 0.2, mean_off_s: 0.3 },
        };
        let spec = TrafficSpec {
            flows_per_group: flows,
            rate_pps: rate,
            payload: 512,
            model,
            group_stagger_us: 50_000,
        };
        let a = spec.schedule(groups, 1_000_000, seed);
        let b = spec.schedule(groups, 1_000_000, seed);
        prop_assert_eq!(&a, &b);
        // Sequence numbers per flow: 0..n in time order, never repeated.
        for flow in 0..spec.flow_count(groups) {
            let mut pkts: Vec<_> = a.iter().filter(|p| p.flow == flow).collect();
            pkts.sort_by_key(|p| p.at_us);
            for (i, p) in pkts.iter().enumerate() {
                prop_assert_eq!(p.seq as usize, i);
            }
        }
    }
}
