//! # hvdb-cluster — mobility-prediction location-based clustering
//!
//! The HVDB model's Mobile Node Tier (Wang et al., IPDPS 2005, §3) groups
//! MNs into clusters over the virtual-circle grid using the mobility
//! prediction and location-based clustering technique of Sivavakeesar,
//! Pavlou and Liotta (WCNC 2004) — reference \[23\] of the paper. Since that
//! system is not available as open source, this crate implements the two
//! published election criteria directly:
//!
//! 1. highest predicted residence time within the cluster's virtual circle
//!    (computed geometrically from position and velocity), and
//! 2. minimum distance from the virtual circle centre,
//!
//! restricted to CH-capable hardware (paper §3's capability assumption).
//!
//! Modules: [`election`] (scoring and election), [`cluster`] (snapshot
//! cluster formation with overlap membership), [`maintenance`] (handover
//! events and stability measurement), [`lease`] (generation-stamped
//! head tracking consumed by the distributed protocol's members).

#![warn(missing_docs)]

pub mod cluster;
pub mod election;
pub mod lease;
pub mod maintenance;

pub use cluster::{form_clusters, Clustering};
pub use election::{elect, Candidate, ElectionConfig};
pub use lease::{HeadLease, LeaseUpdate};
pub use maintenance::{diff, Handover, StabilityReport};
