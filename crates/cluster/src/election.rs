//! Cluster-head election.
//!
//! The paper adopts the "mobility prediction and location-based clustering
//! technique" of Sivavakeesar et al. \[23\], "which elects an MN as a CH when
//! it satisfies the following criteria: (1) it has the highest probability,
//! in comparison to other MNs within the same cluster, to stay for longer
//! time within the cluster; (2) it has the minimum distance from the center
//! of the cluster" (§1). Additionally, §3 assumes CHs have stronger
//! hardware, so only `Capability::Enhanced`-class candidates are eligible.
//!
//! [`elect`] scores candidates by predicted residence time (criterion 1),
//! breaking ties by distance to the VCC (criterion 2) and finally by node id
//! so the election is deterministic. Residence times are bucketed before
//! comparison so that near-equal predictions fall through to the distance
//! criterion, as the two-criteria formulation intends.

use hvdb_geo::{Point, VcGrid, VcId, Vec2};
use serde::{Deserialize, Serialize};

/// One node's candidacy for cluster head of a VC.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Candidate {
    /// Opaque node identifier (the simulator's `NodeId.0`).
    pub node: u32,
    /// Current position.
    pub pos: Point,
    /// Current velocity.
    pub vel: Vec2,
    /// Whether the node has CH-class hardware (paper §3).
    pub eligible: bool,
}

/// Election parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ElectionConfig {
    /// Residence-time bucket width (seconds): predictions within one bucket
    /// are considered equal and fall through to the distance criterion.
    pub residence_bucket_secs: f64,
    /// Residence predictions are capped here (seconds); a node predicted to
    /// stay 10 min is no better than one staying 5 min for cluster-lifetime
    /// purposes.
    pub residence_cap_secs: f64,
}

impl Default for ElectionConfig {
    fn default() -> Self {
        ElectionConfig {
            residence_bucket_secs: 10.0,
            residence_cap_secs: 300.0,
        }
    }
}

/// The score an election assigns a candidate; orderable, higher wins.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Score {
    bucketed_residence: u64,
    neg_distance: f64,
    neg_id: i64,
}

impl Score {
    fn key(&self) -> (u64, f64, i64) {
        (self.bucketed_residence, self.neg_distance, self.neg_id)
    }
}

/// Scores one candidate for heading `vc`. Returns `None` if the candidate
/// is ineligible (wrong hardware class) or outside the VC's circle.
pub fn score(cfg: &ElectionConfig, grid: &VcGrid, vc: VcId, c: &Candidate) -> Option<Score> {
    if !c.eligible {
        return None;
    }
    let residence = grid.residence_time(vc, c.pos, c.vel)?;
    let capped = residence.min(cfg.residence_cap_secs);
    let bucketed = (capped / cfg.residence_bucket_secs).floor() as u64;
    Some(Score {
        bucketed_residence: bucketed,
        neg_distance: -grid.vcc(vc).distance(c.pos),
        neg_id: -(c.node as i64),
    })
}

/// Elects a cluster head for `vc` among `candidates`. Returns the winner's
/// node id, or `None` if no candidate is eligible and inside the circle.
pub fn elect(
    cfg: &ElectionConfig,
    grid: &VcGrid,
    vc: VcId,
    candidates: &[Candidate],
) -> Option<u32> {
    candidates
        .iter()
        .filter_map(|c| score(cfg, grid, vc, c).map(|s| (s, c.node)))
        .max_by(|(a, _), (b, _)| a.key().partial_cmp(&b.key()).expect("scores are finite"))
        .map(|(_, node)| node)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hvdb_geo::Aabb;

    fn grid() -> VcGrid {
        VcGrid::with_dimensions(Aabb::from_size(800.0, 800.0), 8, 8)
    }

    fn cand(node: u32, pos: Point, vel: Vec2) -> Candidate {
        Candidate {
            node,
            pos,
            vel,
            eligible: true,
        }
    }

    #[test]
    fn longer_residence_wins() {
        let g = grid();
        let vc = VcId::new(4, 4);
        let c = g.vcc(vc);
        // Node 1 races out of the circle; node 2 dawdles.
        let fast = cand(1, c, Vec2::new(30.0, 0.0));
        let slow = cand(2, c, Vec2::new(0.5, 0.0));
        assert_eq!(
            elect(&ElectionConfig::default(), &g, vc, &[fast, slow]),
            Some(2)
        );
    }

    #[test]
    fn distance_breaks_residence_ties() {
        let g = grid();
        let vc = VcId::new(4, 4);
        let c = g.vcc(vc);
        // Both stationary (infinite residence, same bucket): closer wins.
        let near = cand(7, Point::new(c.x + 5.0, c.y), Vec2::ZERO);
        let far = cand(3, Point::new(c.x + 40.0, c.y), Vec2::ZERO);
        assert_eq!(
            elect(&ElectionConfig::default(), &g, vc, &[far, near]),
            Some(7)
        );
    }

    #[test]
    fn id_breaks_full_ties_deterministically() {
        let g = grid();
        let vc = VcId::new(2, 2);
        let c = g.vcc(vc);
        let a = cand(9, c, Vec2::ZERO);
        let b = cand(4, c, Vec2::ZERO);
        // Same residence bucket, same distance: lowest id wins.
        assert_eq!(elect(&ElectionConfig::default(), &g, vc, &[a, b]), Some(4));
        assert_eq!(elect(&ElectionConfig::default(), &g, vc, &[b, a]), Some(4));
    }

    #[test]
    fn ineligible_candidates_never_elected() {
        let g = grid();
        let vc = VcId::new(1, 1);
        let c = g.vcc(vc);
        let mut weak = cand(1, c, Vec2::ZERO);
        weak.eligible = false;
        assert_eq!(elect(&ElectionConfig::default(), &g, vc, &[weak]), None);
        let strong = cand(2, Point::new(c.x + 60.0, c.y), Vec2::ZERO);
        assert_eq!(
            elect(&ElectionConfig::default(), &g, vc, &[weak, strong]),
            Some(2)
        );
    }

    #[test]
    fn candidates_outside_circle_are_skipped() {
        let g = grid();
        let vc = VcId::new(0, 0);
        let outside = cand(5, g.vcc(VcId::new(7, 7)), Vec2::ZERO);
        assert_eq!(elect(&ElectionConfig::default(), &g, vc, &[outside]), None);
    }

    #[test]
    fn empty_candidate_set() {
        let g = grid();
        assert_eq!(
            elect(&ElectionConfig::default(), &g, VcId::new(0, 0), &[]),
            None
        );
    }

    #[test]
    fn residence_cap_equalises_long_stays() {
        let g = grid();
        let vc = VcId::new(4, 4);
        let c = g.vcc(vc);
        let cfg = ElectionConfig {
            residence_bucket_secs: 10.0,
            residence_cap_secs: 60.0,
        };
        // Both stay > 60 s (slow speeds): residence capped equal, so the
        // closer candidate wins even though its raw residence is smaller.
        let slower_far = cand(1, Point::new(c.x + 30.0, c.y), Vec2::new(0.1, 0.0));
        let faster_near = cand(2, Point::new(c.x + 2.0, c.y), Vec2::new(0.5, 0.0));
        assert_eq!(elect(&cfg, &g, vc, &[slower_far, faster_near]), Some(2));
    }

    #[test]
    fn score_none_for_outside_or_ineligible() {
        let g = grid();
        let cfg = ElectionConfig::default();
        let vc = VcId::new(3, 3);
        let mut c = cand(1, g.vcc(vc), Vec2::ZERO);
        assert!(score(&cfg, &g, vc, &c).is_some());
        c.eligible = false;
        assert!(score(&cfg, &g, vc, &c).is_none());
    }
}
