//! Generation-stamped cluster-head tracking.
//!
//! A member's knowledge of "who heads my VC" is soft state learnt from
//! `ChAnnounce` broadcasts. Under frame loss those broadcasts go missing
//! and — worse — late or reordered announcements from a superseded head
//! can roll a member's view backwards, pointing its data traffic at a
//! node that already resigned. [`HeadLease`] fixes both: announcements
//! carry a monotone **designation term** (election epoch) per VC, the
//! lease only moves forward in term order, and the stored head expires
//! after K missed re-announcements instead of lingering forever.
//!
//! The election side mints terms: the winner of a round announces with
//! `observed term + 1` (see [`HeadLease::next_term`]), so every
//! legitimate succession is strictly newer than anything the old head
//! ever stamped.

use hvdb_sim::{SimDuration, SimTime};

/// Verdict of [`HeadLease::observe`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeaseUpdate {
    /// The announcement installed a new head (first heard, newer term, or
    /// deterministic tie-break).
    New,
    /// The announcement re-confirmed the current head (same head, term not
    /// older): the expiry clock restarts.
    Refreshed,
    /// The announcement was older than the stored view: suppressed.
    Stale,
}

/// A member's generation-stamped view of its VC's current head.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HeadLease {
    head: Option<u32>,
    term: u64,
    heard_at: SimTime,
}

impl HeadLease {
    /// Observes an announcement `head` stamped with `term` at `now`.
    ///
    /// Ordering: a strictly newer term always wins; the current head
    /// re-announcing at its own term refreshes the lease; an equal term
    /// from a *different* node (two nodes both believing they won — only
    /// possible while their candidacy views diverge) breaks the tie
    /// toward the lower node id, matching the election's final tie-break;
    /// anything older is stale.
    ///
    /// `deadline` bounds the term fence's lifetime: once the view has
    /// gone that long without an accepted observation, the fence is
    /// evidence about a head that is long gone, and *any* announcement
    /// starts a fresh epoch. Without this, a successor that never heard
    /// the old head (it arrived after the failure) mints a low term and
    /// would be rejected by fenced members forever — a permanently
    /// orphaned cluster.
    pub fn observe(
        &mut self,
        head: u32,
        term: u64,
        now: SimTime,
        deadline: SimDuration,
    ) -> LeaseUpdate {
        if (self.head.is_some() || self.term > 0) && now.since(self.heard_at) > deadline {
            // Expired view: accept unconditionally and restart the term
            // history at the announcer's epoch.
            self.head = Some(head);
            self.term = term;
            self.heard_at = now;
            return LeaseUpdate::New;
        }
        let update = match self.head {
            // No current head: anything strictly newer than the term
            // history wins (after [`HeadLease::vacate`] the retired
            // head's stale announcements still carry the old term and
            // must stay out; on a fresh/cleared lease the term is 0 and
            // every real announcement passes).
            None => {
                if term > self.term {
                    LeaseUpdate::New
                } else {
                    LeaseUpdate::Stale
                }
            }
            Some(h) if head == h => {
                if term >= self.term {
                    LeaseUpdate::Refreshed
                } else {
                    LeaseUpdate::Stale
                }
            }
            Some(h) => {
                if term > self.term || (term == self.term && head < h) {
                    LeaseUpdate::New
                } else {
                    LeaseUpdate::Stale
                }
            }
        };
        if update != LeaseUpdate::Stale {
            self.head = Some(head);
            self.term = self.term.max(term);
            self.heard_at = now;
        }
        update
    }

    /// The current head, or `None` if nothing was observed or the lease
    /// has gone `deadline` without a re-announcement (K-miss expiry —
    /// derive the deadline with `hvdb_core`'s `miss_deadline` or
    /// equivalent).
    pub fn head(&self, now: SimTime, deadline: SimDuration) -> Option<u32> {
        let head = self.head?;
        if now.since(self.heard_at) > deadline {
            None
        } else {
            Some(head)
        }
    }

    /// The current head ignoring expiry (handover bookkeeping).
    pub fn head_unchecked(&self) -> Option<u32> {
        self.head
    }

    /// The highest designation term observed so far.
    pub fn term(&self) -> u64 {
        self.term
    }

    /// The term a newly elected head must announce with to supersede
    /// everything this view has seen.
    pub fn next_term(&self) -> u64 {
        self.term + 1
    }

    /// Resets the view entirely. Terms are per-VC, so a member that moved
    /// to a different VC (or failed and recovered) must forget both the
    /// head *and* the term history — fencing a new VC's announcements
    /// with the old VC's terms would orphan the member.
    pub fn clear(&mut self) {
        *self = HeadLease::default();
    }

    /// Drops the head but keeps the term history: the head retired (left
    /// the VC) and told us so. The next winner mints a higher term, so
    /// keeping the fence costs nothing — while resetting it would let the
    /// retired head's stale announcements win again.
    pub fn vacate(&mut self) {
        self.head = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DEADLINE: SimDuration = SimDuration::from_secs(7);

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn first_announcement_installs() {
        let mut l = HeadLease::default();
        assert_eq!(l.observe(5, 1, t(0), DEADLINE), LeaseUpdate::New);
        assert_eq!(l.head(t(1), DEADLINE), Some(5));
        assert_eq!(l.term(), 1);
    }

    #[test]
    fn newer_term_supersedes_older_is_suppressed() {
        let mut l = HeadLease::default();
        l.observe(5, 3, t(0), DEADLINE);
        // Succession: new head with a newer term.
        assert_eq!(l.observe(9, 4, t(1), DEADLINE), LeaseUpdate::New);
        assert_eq!(l.head(t(1), DEADLINE), Some(9));
        // The resigned head's late announcement must not roll us back.
        assert_eq!(l.observe(5, 3, t(2), DEADLINE), LeaseUpdate::Stale);
        assert_eq!(l.head(t(2), DEADLINE), Some(9));
        assert_eq!(l.term(), 4);
    }

    #[test]
    fn refresh_restarts_expiry_clock() {
        let mut l = HeadLease::default();
        l.observe(5, 2, t(0), DEADLINE);
        assert_eq!(l.observe(5, 2, t(5), DEADLINE), LeaseUpdate::Refreshed);
        // 11 s after first hearing but only 6 after the refresh: alive.
        assert_eq!(l.head(t(11), DEADLINE), Some(5));
        // Silent past the deadline: the lease reports no head...
        assert_eq!(l.head(t(13), DEADLINE), None);
        // ...but the view itself survives for term bookkeeping.
        assert_eq!(l.head_unchecked(), Some(5));
    }

    #[test]
    fn equal_term_ties_break_to_lower_id() {
        let mut l = HeadLease::default();
        l.observe(9, 2, t(0), DEADLINE);
        assert_eq!(l.observe(4, 2, t(1), DEADLINE), LeaseUpdate::New);
        assert_eq!(l.observe(9, 2, t(2), DEADLINE), LeaseUpdate::Stale);
        assert_eq!(l.head(t(2), DEADLINE), Some(4));
    }

    #[test]
    fn clear_resets_head_and_term() {
        let mut l = HeadLease::default();
        l.observe(5, 6, t(0), DEADLINE);
        l.clear();
        assert_eq!(l.head(t(0), DEADLINE), None);
        assert_eq!(l.term(), 0);
        // In the new VC, term counting starts over: a term-1 announcement
        // must be accepted even though the old VC was at term 6.
        assert_eq!(l.observe(7, 1, t(1), DEADLINE), LeaseUpdate::New);
        assert_eq!(l.head(t(1), DEADLINE), Some(7));
    }

    #[test]
    fn vacate_keeps_term_fence() {
        let mut l = HeadLease::default();
        l.observe(5, 4, t(0), DEADLINE);
        l.vacate();
        assert_eq!(l.head(t(0), DEADLINE), None);
        // The retiree's stale in-flight announcement cannot re-install it.
        assert_eq!(l.observe(5, 4, t(1), DEADLINE), LeaseUpdate::Stale);
        // The successor's next term wins.
        assert_eq!(l.observe(9, 5, t(1), DEADLINE), LeaseUpdate::New);
        assert_eq!(l.head(t(1), DEADLINE), Some(9));
    }

    #[test]
    fn expired_fence_accepts_a_late_successor() {
        // Head 5 dies at term 3. The eventual winner arrived after 5's
        // last announcement, so it minted term 1 — fenced members must
        // still accept it once the old view has expired, or the cluster
        // is orphaned forever.
        let mut l = HeadLease::default();
        l.observe(5, 3, t(0), DEADLINE);
        assert_eq!(l.observe(8, 1, t(20), DEADLINE), LeaseUpdate::New);
        assert_eq!(l.head(t(20), DEADLINE), Some(8));
        // The term history restarted at the new epoch.
        assert_eq!(l.term(), 1);
        // Same for a vacated-but-stale fence.
        let mut l = HeadLease::default();
        l.observe(5, 3, t(0), DEADLINE);
        l.vacate();
        assert_eq!(l.observe(8, 1, t(20), DEADLINE), LeaseUpdate::New);
        assert_eq!(l.head(t(20), DEADLINE), Some(8));
    }

    #[test]
    fn next_term_supersedes_history() {
        let mut l = HeadLease::default();
        l.observe(3, 9, t(0), DEADLINE);
        let winner_term = l.next_term();
        assert_eq!(winner_term, 10);
        assert_eq!(l.observe(8, winner_term, t(1), DEADLINE), LeaseUpdate::New);
        assert_eq!(l.head(t(1), DEADLINE), Some(8));
    }
}
