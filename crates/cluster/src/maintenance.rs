//! Cluster maintenance: handover, re-election, and stability measurement.
//!
//! The HVDB's "non-dynamic" property (§3) rests on clusters staying stable:
//! the clustering technique of \[23\] "has been shown to be able to form
//! clusters much more stably than other schemes". This module diffs two
//! consecutive [`Clustering`] snapshots to (a) enumerate the handover events
//! the backbone must absorb and (b) quantify stability — the metric the
//! model-construction experiment (F1) reports across mobility levels.

use crate::cluster::Clustering;
use hvdb_geo::VcId;
use serde::{Deserialize, Serialize};

/// One cluster-head change between consecutive snapshots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Handover {
    /// A VC that had no head gained one.
    Formed {
        /// The VC gaining a head.
        vc: VcId,
        /// The new head.
        new: u32,
    },
    /// A VC's head changed.
    Replaced {
        /// The VC whose head changed.
        vc: VcId,
        /// Previous head.
        old: u32,
        /// New head.
        new: u32,
    },
    /// A VC lost its head without replacement (hypercube node vanishes —
    /// the cube becomes more incomplete).
    Dissolved {
        /// The VC losing its head.
        vc: VcId,
        /// The departed head.
        old: u32,
    },
}

/// Stability summary between two snapshots.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StabilityReport {
    /// VCs headed in both snapshots by the same node.
    pub unchanged: usize,
    /// VCs headed in both snapshots by different nodes.
    pub replaced: usize,
    /// VCs newly headed.
    pub formed: usize,
    /// VCs that lost their head.
    pub dissolved: usize,
}

impl StabilityReport {
    /// Fraction of previously-headed VCs whose head survived: the paper's
    /// operational notion of cluster stability. 1.0 if nothing was headed.
    pub fn retention(&self) -> f64 {
        let prev = self.unchanged + self.replaced + self.dissolved;
        if prev == 0 {
            1.0
        } else {
            self.unchanged as f64 / prev as f64
        }
    }
}

/// Diffs two clusterings, returning the handover events (sorted by VC for
/// determinism) and the stability summary.
pub fn diff(prev: &Clustering, next: &Clustering) -> (Vec<Handover>, StabilityReport) {
    let mut events = Vec::new();
    let mut report = StabilityReport {
        unchanged: 0,
        replaced: 0,
        formed: 0,
        dissolved: 0,
    };
    let mut vcs: Vec<VcId> = prev
        .head_of_vc
        .keys()
        .chain(next.head_of_vc.keys())
        .copied()
        .collect();
    vcs.sort_unstable();
    vcs.dedup();
    for vc in vcs {
        match (prev.head_of_vc.get(&vc), next.head_of_vc.get(&vc)) {
            (Some(&old), Some(&new)) if old == new => report.unchanged += 1,
            (Some(&old), Some(&new)) => {
                report.replaced += 1;
                events.push(Handover::Replaced { vc, old, new });
            }
            (None, Some(&new)) => {
                report.formed += 1;
                events.push(Handover::Formed { vc, new });
            }
            (Some(&old), None) => {
                report.dissolved += 1;
                events.push(Handover::Dissolved { vc, old });
            }
            (None, None) => unreachable!("vc came from one of the maps"),
        }
    }
    (events, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::form_clusters;
    use crate::election::{Candidate, ElectionConfig};
    use hvdb_geo::{Aabb, Point, VcGrid, Vec2};

    fn grid() -> VcGrid {
        VcGrid::with_dimensions(Aabb::from_size(800.0, 800.0), 8, 8)
    }

    fn snapshot(nodes: &[(u32, Point)]) -> Clustering {
        let cands: Vec<Candidate> = nodes
            .iter()
            .map(|(id, pos)| Candidate {
                node: *id,
                pos: *pos,
                vel: Vec2::ZERO,
                eligible: true,
            })
            .collect();
        form_clusters(&ElectionConfig::default(), &grid(), &cands)
    }

    #[test]
    fn identical_snapshots_are_fully_stable() {
        let g = grid();
        let nodes = vec![(0, g.vcc(VcId::new(1, 1))), (1, g.vcc(VcId::new(5, 5)))];
        let a = snapshot(&nodes);
        let (events, report) = diff(&a, &a);
        assert!(events.is_empty());
        assert_eq!(report.unchanged, 2);
        assert_eq!(report.retention(), 1.0);
    }

    #[test]
    fn head_departure_dissolves_or_replaces() {
        let g = grid();
        let vc = VcId::new(3, 3);
        let a = snapshot(&[(0, g.vcc(vc))]);
        // Head moved across the map; its old VC is empty now.
        let b = snapshot(&[(0, g.vcc(VcId::new(0, 0)))]);
        let (events, report) = diff(&a, &b);
        assert!(events.contains(&Handover::Dissolved { vc, old: 0 }));
        assert!(events.contains(&Handover::Formed {
            vc: VcId::new(0, 0),
            new: 0
        }));
        assert_eq!(report.dissolved, 1);
        assert_eq!(report.formed, 1);
        assert_eq!(report.retention(), 0.0);
    }

    #[test]
    fn replacement_detected() {
        let g = grid();
        let vc = VcId::new(4, 4);
        let c = g.vcc(vc);
        // Node 0 heads; then node 1 (closer) appears and takes over while 0
        // drifts to the edge.
        let a = snapshot(&[(0, c)]);
        let b = snapshot(&[(0, Point::new(c.x + 45.0, c.y)), (1, c)]);
        let (events, report) = diff(&a, &b);
        // Node 0 may additionally be elected head of the overlap VC it
        // drifted into; the replacement in (4,4) is what matters here.
        assert!(events.contains(&Handover::Replaced { vc, old: 0, new: 1 }));
        assert_eq!(report.replaced, 1);
        assert_eq!(report.retention(), 0.0);
    }

    #[test]
    fn retention_counts_only_previously_headed() {
        let g = grid();
        let a = snapshot(&[(0, g.vcc(VcId::new(0, 0))), (1, g.vcc(VcId::new(1, 1)))]);
        let b = snapshot(&[
            (0, g.vcc(VcId::new(0, 0))),
            (1, g.vcc(VcId::new(1, 1))),
            (2, g.vcc(VcId::new(2, 2))),
        ]);
        let (_, report) = diff(&a, &b);
        assert_eq!(report.unchanged, 2);
        assert_eq!(report.formed, 1);
        assert_eq!(report.retention(), 1.0); // new formations don't hurt retention
    }

    #[test]
    fn empty_to_empty() {
        let a = snapshot(&[]);
        let (events, report) = diff(&a, &a);
        assert!(events.is_empty());
        assert_eq!(report.retention(), 1.0);
    }
}
