//! Cluster formation from a network snapshot.
//!
//! Given every node's (position, velocity, eligibility), [`form_clusters`]
//! produces the paper's Mobile Node Tier structure (§3): each VC with at
//! least one eligible resident gets one cluster head; every node is a
//! member of its primary VC's cluster and — through VC overlap — possibly
//! of neighbouring clusters too ("an MN within the overlapped regions can
//! be a cluster member of two or multiple clusters at the same time for
//! more reliable communications").
//!
//! This module is the *centralised* (snapshot) formulation used by the
//! model-construction experiments and by tests; the distributed, message-
//! driven version lives in `hvdb-core::protocol` and converges to the same
//! assignment under stable positions.

use crate::election::{elect, Candidate, ElectionConfig};
use hvdb_geo::{VcGrid, VcId};
use rustc_hash::FxHashMap;

/// The outcome of cluster formation over one snapshot.
#[derive(Debug, Clone, Default)]
pub struct Clustering {
    /// The elected head of each VC that has one.
    pub head_of_vc: FxHashMap<VcId, u32>,
    /// Inverse map: each head's VC.
    pub vc_of_head: FxHashMap<u32, VcId>,
    /// Every node's primary cluster (the VC containing it).
    pub primary_of_node: FxHashMap<u32, VcId>,
    /// All clusters each node belongs to (primary first, then overlaps).
    pub memberships_of_node: FxHashMap<u32, Vec<VcId>>,
    /// Members of each VC's cluster (nodes whose coverage includes the VC).
    pub members_of_vc: FxHashMap<VcId, Vec<u32>>,
}

impl Clustering {
    /// Number of formed clusters (VCs with a head).
    pub fn cluster_count(&self) -> usize {
        self.head_of_vc.len()
    }

    /// Whether `node` heads some cluster.
    pub fn is_head(&self, node: u32) -> bool {
        self.vc_of_head.contains_key(&node)
    }

    /// The head of the VC containing `node`'s position, if any.
    pub fn head_for_node(&self, node: u32) -> Option<u32> {
        let vc = self.primary_of_node.get(&node)?;
        self.head_of_vc.get(vc).copied()
    }
}

/// Forms clusters from a network snapshot. `nodes` supplies each node's
/// candidacy (position, velocity, hardware class); election follows the
/// two criteria of \[23\] via [`elect`].
pub fn form_clusters(cfg: &ElectionConfig, grid: &VcGrid, nodes: &[Candidate]) -> Clustering {
    let mut out = Clustering::default();
    // Membership: primary VC plus overlap VCs.
    for c in nodes {
        let primary = grid.vc_of(c.pos);
        out.primary_of_node.insert(c.node, primary);
        let covering = grid.covering_vcs(c.pos);
        debug_assert!(covering.contains(&primary));
        let mut m = Vec::with_capacity(covering.len());
        m.push(primary);
        for vc in covering {
            if vc != primary {
                m.push(vc);
            }
        }
        for vc in &m {
            out.members_of_vc.entry(*vc).or_default().push(c.node);
        }
        out.memberships_of_node.insert(c.node, m);
    }
    for members in out.members_of_vc.values_mut() {
        members.sort_unstable();
    }
    // Election per VC among the candidates *residing* in it (covered by the
    // circle). Iterate VCs in grid order for determinism.
    for vc in grid.iter_ids() {
        let Some(members) = out.members_of_vc.get(&vc) else {
            continue;
        };
        let candidates: Vec<Candidate> = members
            .iter()
            .filter_map(|id| nodes.iter().find(|c| c.node == *id))
            .copied()
            .collect();
        if let Some(head) = elect(cfg, grid, vc, &candidates) {
            out.head_of_vc.insert(vc, head);
            out.vc_of_head.insert(head, vc);
        }
    }
    // A node can win at most one VC election as primary head; overlap can
    // elect the same node in two VCs. Keep only the election for the node's
    // *primary* VC when both happened, re-electing the other VC without it.
    let double_heads: Vec<(u32, VcId)> = out
        .head_of_vc
        .iter()
        .filter(|(vc, head)| out.primary_of_node.get(*head) != Some(*vc))
        .map(|(vc, head)| (*head, *vc))
        .collect();
    for (head, vc) in double_heads {
        // Only demote if the node also heads its primary VC; otherwise this
        // is its only headship and it may keep it (it still resides in the
        // circle by construction).
        let primary = out.primary_of_node[&head];
        if out.head_of_vc.get(&primary) == Some(&head) {
            out.head_of_vc.remove(&vc);
            let candidates: Vec<Candidate> = out.members_of_vc[&vc]
                .iter()
                .filter(|id| **id != head)
                .filter_map(|id| nodes.iter().find(|c| c.node == *id))
                .copied()
                .collect();
            if let Some(new_head) = elect(cfg, grid, vc, &candidates) {
                out.head_of_vc.insert(vc, new_head);
                out.vc_of_head.insert(new_head, vc);
            }
        }
    }
    // Rebuild inverse map cleanly (demotions may have left stale entries).
    out.vc_of_head = out
        .head_of_vc
        .iter()
        .map(|(vc, head)| (*head, *vc))
        .collect();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hvdb_geo::{Aabb, Point, Vec2};

    fn grid() -> VcGrid {
        VcGrid::with_dimensions(Aabb::from_size(800.0, 800.0), 8, 8)
    }

    fn cand(node: u32, pos: Point) -> Candidate {
        Candidate {
            node,
            pos,
            vel: Vec2::ZERO,
            eligible: true,
        }
    }

    #[test]
    fn one_cluster_per_occupied_vc() {
        let g = grid();
        let cfg = ElectionConfig::default();
        // Put one node at each of three VC centres.
        let nodes = vec![
            cand(0, g.vcc(VcId::new(0, 0))),
            cand(1, g.vcc(VcId::new(3, 3))),
            cand(2, g.vcc(VcId::new(7, 7))),
        ];
        let c = form_clusters(&cfg, &g, &nodes);
        assert_eq!(c.cluster_count(), 3);
        assert_eq!(c.head_of_vc[&VcId::new(0, 0)], 0);
        assert_eq!(c.head_of_vc[&VcId::new(3, 3)], 1);
        assert_eq!(c.head_of_vc[&VcId::new(7, 7)], 2);
        assert!(c.is_head(1));
        assert_eq!(c.head_for_node(2), Some(2));
    }

    #[test]
    fn members_join_their_primary_cluster() {
        let g = grid();
        let cfg = ElectionConfig::default();
        let center = g.vcc(VcId::new(4, 4));
        let nodes = vec![
            cand(0, center),
            cand(1, Point::new(center.x + 10.0, center.y)),
            cand(2, Point::new(center.x - 15.0, center.y + 5.0)),
        ];
        let c = form_clusters(&cfg, &g, &nodes);
        assert_eq!(c.cluster_count(), 1);
        assert_eq!(c.head_of_vc[&VcId::new(4, 4)], 0); // closest to VCC
        assert_eq!(c.members_of_vc[&VcId::new(4, 4)], vec![0, 1, 2]);
        assert_eq!(c.head_for_node(1), Some(0));
    }

    #[test]
    fn overlap_membership_in_multiple_clusters() {
        let g = grid();
        let cfg = ElectionConfig::default();
        // A node on the edge midpoint between two cells lies in both circles.
        let edge = Point::new(200.0, 150.0);
        let covering = g.covering_vcs(edge);
        assert!(covering.len() >= 2);
        let nodes = vec![cand(0, edge)];
        let c = form_clusters(&cfg, &g, &nodes);
        let memberships = &c.memberships_of_node[&0];
        assert!(memberships.len() >= 2);
        assert_eq!(memberships[0], g.vc_of(edge)); // primary first
    }

    #[test]
    fn no_eligible_resident_no_cluster() {
        let g = grid();
        let cfg = ElectionConfig::default();
        let mut weak = cand(0, g.vcc(VcId::new(2, 2)));
        weak.eligible = false;
        let c = form_clusters(&cfg, &g, &[weak]);
        assert_eq!(c.cluster_count(), 0);
        assert_eq!(c.head_for_node(0), None);
        // The node is still a member of its VC.
        assert_eq!(c.members_of_vc[&VcId::new(2, 2)], vec![0]);
    }

    #[test]
    fn overlap_node_heads_at_most_its_primary_when_others_available() {
        let g = grid();
        let cfg = ElectionConfig::default();
        // Node 0 on the seam covers two VCs; node 1 sits in the neighbour
        // VC's centre. Node 0 must not head both clusters.
        let edge = Point::new(200.0, 150.0);
        let primary = g.vc_of(edge);
        let covering = g.covering_vcs(edge);
        let other = *covering.iter().find(|vc| **vc != primary).unwrap();
        let nodes = vec![cand(0, edge), cand(1, g.vcc(other))];
        let c = form_clusters(&cfg, &g, &nodes);
        assert_eq!(c.head_of_vc[&other], 1);
        assert_eq!(c.head_of_vc[&primary], 0);
    }

    #[test]
    fn dense_population_every_vc_headed() {
        let g = grid();
        let cfg = ElectionConfig::default();
        // One node per VC centre.
        let nodes: Vec<Candidate> = g
            .iter_ids()
            .enumerate()
            .map(|(i, vc)| cand(i as u32, g.vcc(vc)))
            .collect();
        let c = form_clusters(&cfg, &g, &nodes);
        assert_eq!(c.cluster_count(), 64);
        // Every node heads its own VC (it's the only resident at distance 0).
        for (i, vc) in g.iter_ids().enumerate() {
            assert_eq!(c.head_of_vc[&vc], i as u32);
        }
    }

    #[test]
    fn deterministic_given_same_snapshot() {
        let g = grid();
        let cfg = ElectionConfig::default();
        let nodes: Vec<Candidate> = (0..200)
            .map(|i| {
                cand(
                    i,
                    Point::new((i as f64 * 37.0) % 800.0, (i as f64 * 53.0) % 800.0),
                )
            })
            .collect();
        let a = form_clusters(&cfg, &g, &nodes);
        let b = form_clusters(&cfg, &g, &nodes);
        assert_eq!(a.head_of_vc, b.head_of_vc);
        assert_eq!(a.members_of_vc, b.members_of_vc);
    }
}
