//! Property-based tests for the clustering tier.

use hvdb_cluster::{diff, elect, form_clusters, Candidate, ElectionConfig};
use hvdb_geo::{Aabb, Point, VcGrid, Vec2};
use proptest::prelude::*;

fn grid() -> VcGrid {
    VcGrid::with_dimensions(Aabb::from_size(800.0, 800.0), 8, 8)
}

fn arb_candidates(n: usize) -> impl Strategy<Value = Vec<Candidate>> {
    proptest::collection::vec(
        (
            0.0..800.0f64,
            0.0..800.0f64,
            -5.0..5.0f64,
            -5.0..5.0f64,
            any::<bool>(),
        ),
        1..n,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (x, y, vx, vy, eligible))| Candidate {
                node: i as u32,
                pos: Point::new(x, y),
                vel: Vec2::new(vx, vy),
                eligible,
            })
            .collect()
    })
}

proptest! {
    /// The elected head is always an eligible candidate inside the VC's
    /// circle, and the election is order-independent.
    #[test]
    fn election_sound_and_order_independent(cands in arb_candidates(40)) {
        let g = grid();
        let cfg = ElectionConfig::default();
        for vc in g.iter_ids() {
            let winner = elect(&cfg, &g, vc, &cands);
            let mut shuffled = cands.clone();
            shuffled.reverse();
            prop_assert_eq!(winner, elect(&cfg, &g, vc, &shuffled));
            if let Some(w) = winner {
                let c = cands.iter().find(|c| c.node == w).unwrap();
                prop_assert!(c.eligible);
                prop_assert!(g.vcc(vc).distance(c.pos) <= g.vc_radius() + 1e-9);
            }
        }
    }

    /// Cluster formation invariants: every head resides in a VC it covers;
    /// every node has a primary membership; heads are eligible.
    #[test]
    fn formation_invariants(cands in arb_candidates(60)) {
        let g = grid();
        let cfg = ElectionConfig::default();
        let clustering = form_clusters(&cfg, &g, &cands);
        for (vc, head) in &clustering.head_of_vc {
            let c = cands.iter().find(|c| c.node == *head).unwrap();
            prop_assert!(c.eligible, "ineligible head {head}");
            prop_assert!(
                g.vcc(*vc).distance(c.pos) <= g.vc_radius() + 1e-9,
                "head {head} outside its circle"
            );
        }
        for c in &cands {
            let primary = clustering.primary_of_node[&c.node];
            prop_assert_eq!(primary, g.vc_of(c.pos));
            let memberships = &clustering.memberships_of_node[&c.node];
            prop_assert_eq!(memberships[0], primary);
            // All memberships cover the position.
            for vc in memberships {
                prop_assert!(g.vcc(*vc).distance(c.pos) <= g.vc_radius() + 1e-9);
            }
        }
        // A VC containing an eligible resident is headed, unless every such
        // resident already heads a different cluster (a node heads at most
        // one VC; overlap residents may be claimed by their primary VC).
        for vc in g.iter_ids() {
            let eligible_residents: Vec<u32> = cands
                .iter()
                .filter(|c| {
                    c.eligible && g.vcc(vc).distance(c.pos) <= g.vc_radius() - 1e-9
                })
                .map(|c| c.node)
                .collect();
            if !eligible_residents.is_empty() && !clustering.head_of_vc.contains_key(&vc) {
                for node in &eligible_residents {
                    let heads_elsewhere = clustering
                        .vc_of_head
                        .get(node)
                        .map(|v| *v != vc)
                        .unwrap_or(false);
                    prop_assert!(
                        heads_elsewhere,
                        "VC {vc} headless but resident {node} heads nothing"
                    );
                }
            }
        }
    }

    /// Stability diff invariants: categories partition the VC set, and
    /// retention is in [0, 1].
    #[test]
    fn diff_partitions(before in arb_candidates(40), after in arb_candidates(40)) {
        let g = grid();
        let cfg = ElectionConfig::default();
        let a = form_clusters(&cfg, &g, &before);
        let b = form_clusters(&cfg, &g, &after);
        let (events, report) = diff(&a, &b);
        prop_assert_eq!(
            report.replaced + report.formed + report.dissolved,
            events.len()
        );
        let retention = report.retention();
        prop_assert!((0.0..=1.0).contains(&retention));
        prop_assert_eq!(
            report.unchanged + report.replaced + report.dissolved,
            a.head_of_vc.len()
        );
        prop_assert_eq!(
            report.unchanged + report.replaced + report.formed,
            b.head_of_vc.len()
        );
    }
}
