//! SPBM-style multicast (Transier et al. \[28\]) — quad-tree membership
//! aggregation with position-based forwarding.
//!
//! SPBM "uses a hierarchical aggregation of membership information: the
//! further away a region is from an intermediate node, the higher the level
//! of aggregation" (paper §2.2). The HVDB paper's critique — the property
//! our comparative experiments quantify — is that "all the nodes in the
//! network are involved in the membership update".
//!
//! Mechanism reproduced here:
//!
//! * the area is covered by a quad-tree of squares; leaf squares are sized
//!   to the radio range;
//! * every node periodically broadcasts its memberships to its leaf square
//!   (level-0 update — *every* node transmits);
//! * per square and level, the node nearest the square centre acts as the
//!   representative and floods the square's aggregate within the *parent*
//!   square (scoped flood — every node in the parent square retransmits);
//!   at the top level the aggregate floods network-wide;
//! * data packets recurse down the quad-tree: a copy is geo-routed toward
//!   each sub-square known to contain members; inside a leaf square the
//!   packet is broadcast.

use crate::common::{ScenarioState, TAG_GROUP_BASE, TAG_TRAFFIC_BASE};
use hvdb_core::{GroupEvent, GroupId, TrafficItem};
use hvdb_geo::{Aabb, Point};
use hvdb_sim::georoute;
use hvdb_sim::{Ctx, NodeId, Protocol, SimDuration};
use rustc_hash::{FxHashMap, FxHashSet};

const TAG_L0: u64 = 1;
const TAG_AGG: u64 = 2;

/// A quad-tree square: level and coordinates (level 0 = leaves).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Square {
    /// Level (0 = leaf; `levels` = whole area).
    pub level: u8,
    /// Column index at this level.
    pub x: u16,
    /// Row index at this level.
    pub y: u16,
}

/// Quad-tree geometry over the deployment area.
#[derive(Debug, Clone)]
pub struct QuadTree {
    area: Aabb,
    /// Number of levels above the leaves (top square = whole area).
    pub levels: u8,
    leaf_size: f64,
}

impl QuadTree {
    /// Builds a quad-tree whose leaf squares are at most `leaf_target`
    /// across (typically the radio range).
    pub fn new(area: Aabb, leaf_target: f64) -> Self {
        let side = area.width().max(area.height());
        let mut levels = 0u8;
        while side / (1u32 << levels) as f64 > leaf_target && levels < 12 {
            levels += 1;
        }
        QuadTree {
            area,
            levels,
            leaf_size: side / (1u32 << levels) as f64,
        }
    }

    /// The square containing `p` at `level`.
    pub fn square_of(&self, p: Point, level: u8) -> Square {
        debug_assert!(level <= self.levels);
        let cells = 1u32 << (self.levels - level);
        let size = self.leaf_size * (1u32 << level) as f64;
        let x = (((p.x - self.area.min.x) / size).floor() as i64).clamp(0, cells as i64 - 1);
        let y = (((p.y - self.area.min.y) / size).floor() as i64).clamp(0, cells as i64 - 1);
        Square {
            level,
            x: x as u16,
            y: y as u16,
        }
    }

    /// The centre of a square.
    pub fn center(&self, sq: Square) -> Point {
        let size = self.leaf_size * (1u32 << sq.level) as f64;
        Point::new(
            self.area.min.x + (sq.x as f64 + 0.5) * size,
            self.area.min.y + (sq.y as f64 + 0.5) * size,
        )
    }

    /// Whether `p` lies inside `sq`.
    pub fn contains(&self, sq: Square, p: Point) -> bool {
        self.square_of(p, sq.level) == sq
    }

    /// The four child squares of `sq` (level must be > 0).
    pub fn children(&self, sq: Square) -> [Square; 4] {
        debug_assert!(sq.level > 0);
        let l = sq.level - 1;
        let (x, y) = (sq.x * 2, sq.y * 2);
        [
            Square { level: l, x, y },
            Square {
                level: l,
                x: x + 1,
                y,
            },
            Square {
                level: l,
                x,
                y: y + 1,
            },
            Square {
                level: l,
                x: x + 1,
                y: y + 1,
            },
        ]
    }

    /// The parent square (level must be < `levels`).
    pub fn parent(&self, sq: Square) -> Square {
        debug_assert!(sq.level < self.levels);
        Square {
            level: sq.level + 1,
            x: sq.x / 2,
            y: sq.y / 2,
        }
    }
}

/// SPBM messages.
#[derive(Debug, Clone)]
pub enum SpbmMsg {
    /// Level-0 membership broadcast within the leaf square.
    L0 {
        /// The advertising node.
        node: NodeId,
        /// Its memberships.
        groups: Vec<GroupId>,
    },
    /// A representative's aggregate for `square`, flooded within the
    /// parent square (network-wide at the top level).
    Agg {
        /// The square being summarised.
        square: Square,
        /// Groups with members in the square.
        groups: Vec<GroupId>,
        /// Flood origin.
        origin: NodeId,
        /// Flood sequence.
        seq: u64,
    },
    /// A data copy recursing down the quad-tree toward `target`.
    Data {
        /// Packet id.
        data_id: u64,
        /// Destination group.
        group: GroupId,
        /// Payload bytes.
        size: usize,
        /// The square this copy must reach.
        target: Square,
        /// Relays visited.
        visited: Vec<NodeId>,
        /// Remaining hops.
        ttl: u32,
    },
    /// Final delivery broadcast inside a leaf square.
    LeafDeliver {
        /// Packet id.
        data_id: u64,
        /// Destination group.
        group: GroupId,
        /// Payload bytes.
        size: usize,
    },
}

impl SpbmMsg {
    fn wire_size(&self) -> usize {
        match self {
            SpbmMsg::L0 { groups, .. } => 24 + groups.len() * 4,
            SpbmMsg::Agg { groups, .. } => 32 + groups.len() * 4,
            SpbmMsg::Data { size, .. } => 32 + size,
            SpbmMsg::LeafDeliver { size, .. } => 20 + size,
        }
    }
}

/// The SPBM-style protocol.
pub struct SpbmProtocol {
    scenario: ScenarioState,
    quad: Option<QuadTree>,
    /// Per-node: per-square known groups (freshest flood wins per origin).
    sq_groups: Vec<FxHashMap<Square, FxHashSet<GroupId>>>,
    /// Per-node: leaf-square member table (node -> groups).
    leaf_members: Vec<FxHashMap<NodeId, Vec<GroupId>>>,
    /// Per-node flood dedup.
    seen: Vec<FxHashSet<(NodeId, u64)>>,
    /// Per-node data dedup (data_id, square).
    seen_data: Vec<FxHashSet<(u64, Square)>>,
    seq: Vec<u64>,
    update_interval: SimDuration,
    geo_ttl: u32,
}

impl SpbmProtocol {
    /// Creates the protocol for a scripted scenario.
    pub fn new(
        initial_groups: &[(NodeId, GroupId)],
        traffic: Vec<TrafficItem>,
        group_events: Vec<GroupEvent>,
    ) -> Self {
        SpbmProtocol {
            scenario: ScenarioState::new(initial_groups, traffic, group_events),
            quad: None,
            sq_groups: Vec::new(),
            leaf_members: Vec::new(),
            seen: Vec::new(),
            seen_data: Vec::new(),
            seq: Vec::new(),
            update_interval: SimDuration::from_secs(10),
            geo_ttl: 64,
        }
    }

    /// The quad-tree geometry (after start).
    pub fn quad(&self) -> Option<&QuadTree> {
        self.quad.as_ref()
    }

    /// Per-node aggregate table size (experiment instrumentation).
    pub fn table_len(&self, node: NodeId) -> usize {
        self.sq_groups[node.idx()].len()
    }

    fn scoped_reflood(&mut self, node: NodeId, ctx: &mut Ctx<'_, SpbmMsg>, msg: SpbmMsg) {
        // Re-broadcast an Agg flood if we are inside its scope square
        // (the parent of the summarised square; whole network at top).
        let (square, origin, seq) = match &msg {
            SpbmMsg::Agg {
                square,
                origin,
                seq,
                ..
            } => (*square, *origin, *seq),
            _ => unreachable!(),
        };
        if !self.seen[node.idx()].insert((origin, seq)) {
            return;
        }
        let quad = self.quad.as_ref().expect("started");
        let in_scope = if square.level >= quad.levels {
            true
        } else {
            let scope = quad.parent(square);
            quad.contains(scope, ctx.position(node))
        };
        if in_scope {
            let bytes = msg.wire_size();
            ctx.broadcast(node, "spbm-agg", bytes, msg);
        }
    }

    /// Whether this node is the representative of `sq`: nearest to the
    /// square centre among itself and its radio neighbours inside the
    /// square (a deterministic local approximation of SPBM's per-square
    /// coordination).
    fn is_representative(&self, node: NodeId, ctx: &mut Ctx<'_, SpbmMsg>, sq: Square) -> bool {
        let quad = self.quad.as_ref().expect("started");
        let center = quad.center(sq);
        let my_pos = ctx.position(node);
        if !quad.contains(sq, my_pos) {
            return false;
        }
        let my_d = my_pos.distance_sq(center);
        ctx.with_neighbors(node, |ctx, neighbors| {
            for &n in neighbors {
                let p = ctx.position(n);
                if quad.contains(sq, p) {
                    let d = p.distance_sq(center);
                    if d < my_d || (d == my_d && n < node) {
                        return false;
                    }
                }
            }
            true
        })
    }

    fn groups_of_square(&self, node: NodeId, sq: Square) -> FxHashSet<GroupId> {
        let quad = self.quad.as_ref().expect("started");
        if sq.level == 0 {
            // Union of leaf member table (only meaningful for own leaf).
            let mut out: FxHashSet<GroupId> = FxHashSet::default();
            for groups in self.leaf_members[node.idx()].values() {
                out.extend(groups.iter().copied());
            }
            out.extend(self.scenario.member_of[node.idx()].iter().copied());
            // If the leaf isn't ours, fall back to the flood table.
            if let Some(known) = self.sq_groups[node.idx()].get(&sq) {
                out.extend(known.iter().copied());
            }
            let _ = quad;
            out
        } else {
            let mut out: FxHashSet<GroupId> = FxHashSet::default();
            // A distant square is known by its own flooded aggregate; a
            // nearby one by the finer aggregates of its children.
            if let Some(known) = self.sq_groups[node.idx()].get(&sq) {
                out.extend(known.iter().copied());
            }
            for child in quad.children(sq) {
                if let Some(known) = self.sq_groups[node.idx()].get(&child) {
                    out.extend(known.iter().copied());
                }
            }
            out
        }
    }

    fn forward_data(&mut self, node: NodeId, ctx: &mut Ctx<'_, SpbmMsg>, msg: SpbmMsg) {
        let (target, visited) = match &msg {
            SpbmMsg::Data {
                target, visited, ..
            } => (*target, visited.clone()),
            _ => unreachable!(),
        };
        let quad = self.quad.as_ref().expect("started");
        let dest = quad.center(target);
        if let Some(nh) = georoute::next_hop(ctx, node, dest, &visited) {
            let bytes = msg.wire_size();
            ctx.send_reliable(node, nh, "spbm-data", bytes, msg);
        }
    }

    /// Handles a data copy addressed to `target` at a node inside it:
    /// split to child squares with members, or leaf-broadcast.
    fn split_or_deliver(
        &mut self,
        node: NodeId,
        ctx: &mut Ctx<'_, SpbmMsg>,
        data_id: u64,
        group: GroupId,
        size: usize,
        target: Square,
    ) {
        if !self.seen_data[node.idx()].insert((data_id, target)) {
            return;
        }
        let quad = self.quad.as_ref().expect("started").clone();
        if target.level == 0 {
            let msg = SpbmMsg::LeafDeliver {
                data_id,
                group,
                size,
            };
            let bytes = msg.wire_size();
            self.scenario.deliver(node, ctx, data_id, group);
            ctx.broadcast(node, "spbm-deliver", bytes, msg);
            return;
        }
        for child in quad.children(target) {
            if !self.groups_of_square(node, child).contains(&group) {
                continue;
            }
            if quad.contains(child, ctx.position(node)) {
                // Recurse locally.
                self.split_or_deliver(node, ctx, data_id, group, size, child);
            } else {
                let msg = SpbmMsg::Data {
                    data_id,
                    group,
                    size,
                    target: child,
                    visited: vec![node],
                    ttl: self.geo_ttl,
                };
                self.forward_data(node, ctx, msg);
            }
        }
    }
}

impl Protocol for SpbmProtocol {
    type Msg = SpbmMsg;

    fn on_start(&mut self, node: NodeId, ctx: &mut Ctx<'_, SpbmMsg>) {
        self.scenario.on_start(node, ctx);
        if self.quad.is_none() {
            self.quad = Some(QuadTree::new(ctx.area(), ctx.radio_range()));
            let n = ctx.node_count();
            self.sq_groups = vec![FxHashMap::default(); n];
            self.leaf_members = vec![FxHashMap::default(); n];
            self.seen = vec![FxHashSet::default(); n];
            self.seen_data = vec![FxHashSet::default(); n];
            self.seq = vec![0; n];
        }
        let j = SimDuration(ctx.rng().range_u64(0, self.update_interval.0.max(1)));
        ctx.set_timer(node, j, TAG_L0);
        // Aggregation fires half a period after level-0 updates.
        ctx.set_timer(node, j + SimDuration(self.update_interval.0 / 2), TAG_AGG);
    }

    fn on_message(
        &mut self,
        node: NodeId,
        _from: NodeId,
        msg: SpbmMsg,
        ctx: &mut Ctx<'_, SpbmMsg>,
    ) {
        match msg {
            SpbmMsg::L0 {
                node: origin,
                groups,
            } => {
                let quad = self.quad.as_ref().expect("started");
                // Only neighbours in the same leaf square record the entry.
                let my_leaf = quad.square_of(ctx.position(node), 0);
                if quad.contains(my_leaf, ctx.position(origin)) {
                    if groups.is_empty() {
                        self.leaf_members[node.idx()].remove(&origin);
                    } else {
                        self.leaf_members[node.idx()].insert(origin, groups);
                    }
                }
            }
            SpbmMsg::Agg {
                square, ref groups, ..
            } => {
                let set: FxHashSet<GroupId> = groups.iter().copied().collect();
                self.sq_groups[node.idx()].insert(square, set);
                self.scoped_reflood(node, ctx, msg);
            }
            SpbmMsg::Data {
                data_id,
                group,
                size,
                target,
                mut visited,
                ttl,
            } => {
                let quad = self.quad.as_ref().expect("started").clone();
                if quad.contains(target, ctx.position(node)) {
                    self.split_or_deliver(node, ctx, data_id, group, size, target);
                } else if ttl > 0 {
                    georoute::push_visited(&mut visited, node);
                    self.forward_data(
                        node,
                        ctx,
                        SpbmMsg::Data {
                            data_id,
                            group,
                            size,
                            target,
                            visited,
                            ttl: ttl - 1,
                        },
                    );
                }
            }
            SpbmMsg::LeafDeliver { data_id, group, .. } => {
                self.scenario.deliver(node, ctx, data_id, group);
            }
        }
    }

    fn on_timer(&mut self, node: NodeId, tag: u64, ctx: &mut Ctx<'_, SpbmMsg>) {
        if tag >= TAG_GROUP_BASE {
            self.scenario
                .apply_group_event((tag - TAG_GROUP_BASE) as usize);
        } else if tag >= TAG_TRAFFIC_BASE {
            let (data_id, group, size) =
                self.scenario
                    .originate(node, ctx, (tag - TAG_TRAFFIC_BASE) as usize);
            let quad = self.quad.as_ref().expect("started").clone();
            let top = Square {
                level: quad.levels,
                x: 0,
                y: 0,
            };
            self.split_or_deliver(node, ctx, data_id, group, size, top);
        } else if tag == TAG_L0 {
            ctx.set_timer(node, self.update_interval, TAG_L0);
            let mut groups: Vec<GroupId> = self.scenario.member_of[node.idx()]
                .iter()
                .copied()
                .collect();
            groups.sort_unstable();
            let msg = SpbmMsg::L0 { node, groups };
            let bytes = msg.wire_size();
            // Every node transmits, regardless of membership — the cost
            // structure the HVDB paper critiques.
            ctx.broadcast(node, "spbm-l0", bytes, msg);
        } else if tag == TAG_AGG {
            ctx.set_timer(node, self.update_interval, TAG_AGG);
            let quad = self.quad.as_ref().expect("started").clone();
            // For each level, if we represent our square, flood its
            // aggregate within the parent scope.
            for level in 0..quad.levels {
                let sq = quad.square_of(ctx.position(node), level);
                if !self.is_representative(node, ctx, sq) {
                    continue;
                }
                let mut groups: Vec<GroupId> =
                    self.groups_of_square(node, sq).into_iter().collect();
                groups.sort_unstable();
                if groups.is_empty() {
                    continue;
                }
                self.seq[node.idx()] += 1;
                let msg = SpbmMsg::Agg {
                    square: sq,
                    groups,
                    origin: node,
                    seq: self.seq[node.idx()],
                };
                // Self-originated flood: mark seen and broadcast.
                self.seen[node.idx()].insert((node, self.seq[node.idx()]));
                let bytes = msg.wire_size();
                ctx.broadcast(node, "spbm-agg", bytes, msg);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hvdb_geo::Vec2;
    use hvdb_sim::{RadioConfig, SimConfig, SimTime, Simulator, Stationary};

    #[test]
    fn quad_tree_geometry() {
        let q = QuadTree::new(Aabb::from_size(1000.0, 1000.0), 250.0);
        assert_eq!(q.levels, 2); // 1000 -> 500 -> 250
        let p = Point::new(10.0, 10.0);
        assert_eq!(
            q.square_of(p, 0),
            Square {
                level: 0,
                x: 0,
                y: 0
            }
        );
        assert_eq!(
            q.square_of(p, 2),
            Square {
                level: 2,
                x: 0,
                y: 0
            }
        );
        let sq = Square {
            level: 1,
            x: 1,
            y: 0,
        };
        assert!(q.contains(sq, Point::new(700.0, 100.0)));
        assert!(!q.contains(sq, Point::new(100.0, 100.0)));
        assert_eq!(
            q.parent(Square {
                level: 0,
                x: 3,
                y: 2
            }),
            Square {
                level: 1,
                x: 1,
                y: 1
            }
        );
        let kids = q.children(Square {
            level: 1,
            x: 0,
            y: 0,
        });
        assert_eq!(kids.len(), 4);
        assert!(kids.iter().all(|k| k.level == 0 && k.x < 2 && k.y < 2));
        // Center round-trips.
        for level in 0..=2u8 {
            let sq = q.square_of(Point::new(333.0, 777.0), level);
            assert!(q.contains(sq, q.center(sq)));
        }
    }

    fn grid_sim(n_side: u32, seed: u64) -> Simulator<SpbmMsg> {
        let spacing = 150.0;
        let side = n_side as f64 * spacing;
        let cfg = SimConfig {
            area: Aabb::from_size(side, side),
            num_nodes: (n_side * n_side) as usize,
            radio: RadioConfig {
                range: 250.0,
                ..Default::default()
            },
            mobility_tick: SimDuration::ZERO,
            enhanced_fraction: 1.0,
            seed,
            per_receiver_delivery: false,
            compact_delivery: false,
        };
        let mut sim = Simulator::new(cfg, Box::new(Stationary));
        for r in 0..n_side {
            for c in 0..n_side {
                let id = NodeId(r * n_side + c);
                let p = Point::new(c as f64 * spacing + 10.0, r as f64 * spacing + 10.0);
                sim.world_mut().set_motion(id, p, Vec2::ZERO);
            }
        }
        sim.world_mut().rebuild_index();
        sim
    }

    #[test]
    fn every_node_participates_in_membership_update() {
        let mut sim = grid_sim(5, 1);
        let g = GroupId(1);
        let mut p = SpbmProtocol::new(&[(NodeId(0), g)], vec![], vec![]);
        sim.run(&mut p, SimTime::from_secs(25));
        // All 25 nodes broadcast L0 updates (twice in 25 s).
        assert!(sim.stats().msgs("spbm-l0") >= 25);
        // Aggregates flooded too.
        assert!(sim.stats().msgs("spbm-agg") > 0);
    }

    #[test]
    fn aggregates_reach_distant_nodes() {
        let mut sim = grid_sim(6, 2);
        let g = GroupId(1);
        let mut p = SpbmProtocol::new(&[(NodeId(0), g)], vec![], vec![]);
        sim.run(&mut p, SimTime::from_secs(40));
        // The far-corner node should know a top-level square with group g.
        let far = NodeId(35);
        let knows = p.sq_groups[far.idx()]
            .iter()
            .any(|(_, groups)| groups.contains(&g));
        assert!(knows, "far node never learned the group's region");
    }

    #[test]
    fn data_recurses_to_members() {
        let mut sim = grid_sim(6, 3);
        let g = GroupId(1);
        let members = [(NodeId(35), g), (NodeId(30), g)];
        let traffic = vec![TrafficItem {
            at: SimTime::from_secs(45),
            src: NodeId(0),
            group: g,
            size: 256,
            ..Default::default()
        }];
        let mut p = SpbmProtocol::new(&members, traffic, vec![]);
        sim.run(&mut p, SimTime::from_secs(70));
        assert!(
            sim.stats().delivery_ratio() >= 0.99,
            "ratio {}",
            sim.stats().delivery_ratio()
        );
    }
}
