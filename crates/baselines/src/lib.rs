//! # hvdb-baselines — comparison protocols for the HVDB reproduction
//!
//! Behavioural models of the schemes the HVDB paper (Wang et al., IPDPS
//! 2005) positions itself against, each implemented as a
//! [`hvdb_sim::Protocol`] over the same simulator and scenario inputs as
//! the HVDB protocol:
//!
//! * [`flooding`] — network-wide flooding: Θ(N) per packet, no state;
//! * [`par_flood`] — the same flooding algorithm ported to the sharded
//!   parallel engine ([`hvdb_sim::ParProtocol`]); the `engine-threads`
//!   benchmark arm and the reference example of such a port;
//! * [`shared_tree`] — core-rooted shared tree (MAODV-style): the
//!   "tree-based architecture" whose core bottleneck the paper's
//!   load-balancing claim targets (§5);
//! * [`dsm`] — DSM-style global location/membership floods with local
//!   source-tree computation (§2.2's first critique);
//! * [`spbm`] — SPBM-style quad-tree membership aggregation where "all the
//!   nodes in the network are involved in the membership update" (§2.2's
//!   closing critique, the paper's closest competitor).
//!
//! [`common`] holds the shared scenario scaffolding so comparative runs
//! differ only in the protocol.

#![warn(missing_docs)]

pub mod common;
pub mod dsm;
pub mod flooding;
pub mod par_flood;
pub mod shared_tree;
pub mod spbm;

pub use common::ScenarioState;
pub use dsm::{DsmMsg, DsmProtocol};
pub use flooding::{FloodMsg, FloodingProtocol};
pub use par_flood::{ParFlood, ParFloodMsg, ParFloodNode};
pub use shared_tree::{SharedTreeProtocol, TreeMsg};
pub use spbm::{QuadTree, SpbmMsg, SpbmProtocol, Square};
