//! Network-wide flooding multicast — the simplest baseline.
//!
//! Every data packet is re-broadcast once by every node that hears it.
//! Delivery is near-perfect on connected topologies and requires zero
//! control state, but the per-packet cost is Θ(N) transmissions — the
//! curve every scalable scheme is measured against (experiments F5/F6/C4).

use crate::common::{ScenarioState, TAG_GROUP_BASE, TAG_TRAFFIC_BASE};
use hvdb_core::{GroupEvent, GroupId, TrafficItem};
use hvdb_sim::{Ctx, NodeId, Protocol};
use rustc_hash::FxHashSet;

/// Flooded data frame.
#[derive(Debug, Clone)]
pub struct FloodMsg {
    /// Packet id (network-wide dedup).
    pub data_id: u64,
    /// Destination group.
    pub group: GroupId,
    /// Payload bytes.
    pub size: usize,
    /// Transmissions the packet took before this broadcast (hop-count
    /// accounting; rides the 20-byte header allowance).
    pub hops: u32,
}

/// The flooding protocol.
pub struct FloodingProtocol {
    scenario: ScenarioState,
    /// Per-node rebroadcast dedup.
    forwarded: Vec<FxHashSet<u64>>,
}

impl FloodingProtocol {
    /// Creates the protocol for a scripted scenario.
    pub fn new(
        initial_groups: &[(NodeId, GroupId)],
        traffic: Vec<TrafficItem>,
        group_events: Vec<GroupEvent>,
    ) -> Self {
        FloodingProtocol {
            scenario: ScenarioState::new(initial_groups, traffic, group_events),
            forwarded: Vec::new(),
        }
    }

    /// Access to scenario ground truth (experiments).
    pub fn scenario(&self) -> &ScenarioState {
        &self.scenario
    }

    fn flood(&mut self, node: NodeId, ctx: &mut Ctx<'_, FloodMsg>, msg: FloodMsg) {
        if !self.forwarded[node.idx()].insert(msg.data_id) {
            return;
        }
        let bytes = 20 + msg.size;
        ctx.broadcast(node, "flood-data", bytes, msg);
    }
}

impl Protocol for FloodingProtocol {
    type Msg = FloodMsg;

    fn on_start(&mut self, node: NodeId, ctx: &mut Ctx<'_, FloodMsg>) {
        self.scenario.on_start(node, ctx);
        if self.forwarded.len() < ctx.node_count() {
            self.forwarded = vec![FxHashSet::default(); ctx.node_count()];
        }
    }

    fn on_message(
        &mut self,
        node: NodeId,
        _from: NodeId,
        msg: FloodMsg,
        ctx: &mut Ctx<'_, FloodMsg>,
    ) {
        // The broadcast that reached us is one more transmission.
        let hops = msg.hops + 1;
        self.scenario
            .deliver_hops(node, ctx, msg.data_id, msg.group, hops);
        self.flood(node, ctx, FloodMsg { hops, ..msg });
    }

    fn on_timer(&mut self, node: NodeId, tag: u64, ctx: &mut Ctx<'_, FloodMsg>) {
        if tag >= TAG_GROUP_BASE {
            self.scenario
                .apply_group_event((tag - TAG_GROUP_BASE) as usize);
        } else if tag >= TAG_TRAFFIC_BASE {
            let (data_id, group, size) =
                self.scenario
                    .originate(node, ctx, (tag - TAG_TRAFFIC_BASE) as usize);
            self.flood(
                node,
                ctx,
                FloodMsg {
                    data_id,
                    group,
                    size,
                    hops: 0,
                },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hvdb_geo::{Aabb, Point, Vec2};
    use hvdb_sim::{RadioConfig, SimConfig, SimDuration, SimTime, Simulator, Stationary};

    fn grid_sim(n_side: u32, seed: u64) -> Simulator<FloodMsg> {
        let spacing = 150.0;
        let side = n_side as f64 * spacing;
        let cfg = SimConfig {
            area: Aabb::from_size(side, side),
            num_nodes: (n_side * n_side) as usize,
            radio: RadioConfig {
                range: 250.0,
                ..Default::default()
            },
            mobility_tick: SimDuration::ZERO,
            enhanced_fraction: 1.0,
            seed,
            per_receiver_delivery: false,
            compact_delivery: false,
        };
        let mut sim = Simulator::new(cfg, Box::new(Stationary));
        for r in 0..n_side {
            for c in 0..n_side {
                let id = NodeId(r * n_side + c);
                let p = Point::new(c as f64 * spacing + 10.0, r as f64 * spacing + 10.0);
                sim.world_mut().set_motion(id, p, Vec2::ZERO);
            }
        }
        sim.world_mut().rebuild_index();
        sim
    }

    #[test]
    fn flooding_delivers_to_all_members() {
        let mut sim = grid_sim(5, 1);
        let g = GroupId(1);
        let members = [(NodeId(0), g), (NodeId(24), g), (NodeId(12), g)];
        let traffic = vec![TrafficItem {
            at: SimTime::from_secs(1),
            src: NodeId(6),
            group: g,
            size: 256,
            ..Default::default()
        }];
        let mut p = FloodingProtocol::new(&members, traffic, vec![]);
        sim.run(&mut p, SimTime::from_secs(10));
        assert_eq!(sim.stats().delivery_ratio(), 1.0);
    }

    #[test]
    fn every_node_transmits_once_per_packet() {
        let mut sim = grid_sim(4, 2);
        let g = GroupId(1);
        let traffic = vec![TrafficItem {
            at: SimTime::from_secs(1),
            src: NodeId(0),
            group: g,
            size: 100,
            ..Default::default()
        }];
        let mut p = FloodingProtocol::new(&[(NodeId(15), g)], traffic, vec![]);
        sim.run(&mut p, SimTime::from_secs(10));
        // Θ(N) cost: 16 nodes, 16 transmissions (one each).
        assert_eq!(sim.stats().msgs("flood-data"), 16);
    }

    #[test]
    fn duplicate_packets_not_redelivered() {
        let mut sim = grid_sim(3, 3);
        let g = GroupId(2);
        let traffic = vec![TrafficItem {
            at: SimTime::from_secs(1),
            src: NodeId(0),
            group: g,
            size: 64,
            ..Default::default()
        }];
        let mut p = FloodingProtocol::new(&[(NodeId(8), g)], traffic, vec![]);
        sim.run(&mut p, SimTime::from_secs(10));
        // Member hears the packet from several neighbours but counts once.
        assert_eq!(sim.stats().delivery_ratio(), 1.0);
        assert_eq!(sim.stats().latencies().len(), 1);
    }
}
