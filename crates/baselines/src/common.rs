//! Shared scenario scaffolding for baseline protocols.
//!
//! Every baseline runs the *same* scenario inputs as the HVDB protocol
//! (initial group membership, scripted traffic, scripted joins/leaves), so
//! comparative experiments differ only in the protocol under test.

use hvdb_core::{GroupEvent, GroupId, TrafficItem};
use hvdb_sim::{Ctx, NodeId, SimTime};
use rustc_hash::{FxHashMap, FxHashSet};

/// Timer-tag bases shared by all baselines.
pub const TAG_TRAFFIC_BASE: u64 = 1 << 32;
/// Group-event tag base.
pub const TAG_GROUP_BASE: u64 = 1 << 33;

/// Scenario state common to all baselines: per-node memberships, the
/// ground-truth group map, and origin accounting.
pub struct ScenarioState {
    /// Per-node joined groups.
    pub member_of: Vec<FxHashSet<GroupId>>,
    /// Ground truth: group -> members.
    pub truth: FxHashMap<GroupId, FxHashSet<NodeId>>,
    /// Scripted traffic.
    pub traffic: Vec<TrafficItem>,
    /// Scripted membership changes.
    pub group_events: Vec<GroupEvent>,
    /// Per-node delivered data ids (dedup).
    pub seen_data: Vec<FxHashSet<u64>>,
    next_data_id: u64,
}

impl ScenarioState {
    /// Builds the scenario state.
    pub fn new(
        initial_groups: &[(NodeId, GroupId)],
        traffic: Vec<TrafficItem>,
        group_events: Vec<GroupEvent>,
    ) -> Self {
        let mut truth: FxHashMap<GroupId, FxHashSet<NodeId>> = FxHashMap::default();
        for (node, group) in initial_groups {
            truth.entry(*group).or_default().insert(*node);
        }
        ScenarioState {
            member_of: Vec::new(),
            truth,
            traffic,
            group_events,
            seen_data: Vec::new(),
            next_data_id: 1,
        }
    }

    /// Allocates per-node state and schedules scripted timers; call from
    /// each node's `on_start`.
    pub fn on_start<M: Clone>(&mut self, node: NodeId, ctx: &mut Ctx<'_, M>) {
        if self.member_of.len() < ctx.node_count() {
            for id in 0..ctx.node_count() as u32 {
                let groups: FxHashSet<GroupId> = self
                    .truth
                    .iter()
                    .filter(|(_, m)| m.contains(&NodeId(id)))
                    .map(|(g, _)| *g)
                    .collect();
                self.member_of.push(groups);
                self.seen_data.push(FxHashSet::default());
            }
        }
        for (i, t) in self.traffic.iter().enumerate() {
            if t.src == node {
                ctx.set_timer(node, t.at.since(SimTime::ZERO), TAG_TRAFFIC_BASE + i as u64);
            }
        }
        for (i, g) in self.group_events.iter().enumerate() {
            if g.node == node {
                ctx.set_timer(node, g.at.since(SimTime::ZERO), TAG_GROUP_BASE + i as u64);
            }
        }
    }

    /// Applies a scripted group event.
    pub fn apply_group_event(&mut self, idx: usize) {
        let ev = self.group_events[idx];
        if ev.join {
            self.member_of[ev.node.idx()].insert(ev.group);
            self.truth.entry(ev.group).or_default().insert(ev.node);
        } else {
            self.member_of[ev.node.idx()].remove(&ev.group);
            if let Some(m) = self.truth.get_mut(&ev.group) {
                m.remove(&ev.node);
            }
        }
    }

    /// Registers an origin for traffic item `idx` and returns
    /// (data id, group, size). Expected receivers = current true members
    /// minus the source.
    pub fn originate<M: Clone>(
        &mut self,
        node: NodeId,
        ctx: &mut Ctx<'_, M>,
        idx: usize,
    ) -> (u64, GroupId, usize) {
        let item = self.traffic[idx];
        let data_id = self.next_data_id;
        self.next_data_id += 1;
        let expected = self
            .truth
            .get(&item.group)
            .map(|m| m.iter().filter(|n| **n != node).count() as u64)
            .unwrap_or(0);
        // Traffic-plane items carry a flow id; legacy scripted traffic
        // registers as FLOW_NONE at zero cost.
        ctx.record_origin_flow(data_id, expected, item.flow, item.seq);
        (data_id, item.group, item.size)
    }

    /// Records delivery at `node` if it is a member and hasn't seen the
    /// packet. Returns whether this was a fresh delivery.
    pub fn deliver<M: Clone>(
        &mut self,
        node: NodeId,
        ctx: &mut Ctx<'_, M>,
        data_id: u64,
        group: GroupId,
    ) -> bool {
        self.deliver_hops(node, ctx, data_id, group, 0)
    }

    /// [`ScenarioState::deliver`] carrying the physical hop count the
    /// packet traversed (feeds the per-flow hop histograms).
    pub fn deliver_hops<M: Clone>(
        &mut self,
        node: NodeId,
        ctx: &mut Ctx<'_, M>,
        data_id: u64,
        group: GroupId,
        hops: u32,
    ) -> bool {
        if self.member_of[node.idx()].contains(&group) && self.seen_data[node.idx()].insert(data_id)
        {
            ctx.record_delivery_hops(data_id, node, hops);
            true
        } else {
            false
        }
    }

    /// Whether `node` currently belongs to `group`.
    pub fn is_member(&self, node: NodeId, group: GroupId) -> bool {
        self.member_of[node.idx()].contains(&group)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truth_tracks_events() {
        let g = GroupId(1);
        let mut s = ScenarioState::new(
            &[(NodeId(0), g)],
            vec![],
            vec![
                GroupEvent {
                    at: SimTime::from_secs(1),
                    node: NodeId(1),
                    group: g,
                    join: true,
                },
                GroupEvent {
                    at: SimTime::from_secs(2),
                    node: NodeId(0),
                    group: g,
                    join: false,
                },
            ],
        );
        // Simulate allocation for 2 nodes.
        s.member_of = vec![[g].into_iter().collect(), FxHashSet::default()];
        s.seen_data = vec![FxHashSet::default(), FxHashSet::default()];
        s.apply_group_event(0);
        assert!(s.is_member(NodeId(1), g));
        s.apply_group_event(1);
        assert!(!s.is_member(NodeId(0), g));
        assert_eq!(s.truth[&g].len(), 1);
    }
}
