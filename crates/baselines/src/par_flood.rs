//! Flooding multicast on the sharded parallel engine.
//!
//! The serial [`crate::FloodingProtocol`] owns whole-network state behind
//! `&mut self`, which the parallel engine's shard isolation forbids. This
//! port splits the same algorithm into node-local state
//! ([`ParFloodNode`]) plus a shared read-only script ([`ParFlood`]):
//!
//! * Membership lives per node and is mutated only by that node's own
//!   scripted group-event timers.
//! * Expected-receiver counts (the serial `ScenarioState::originate`
//!   truth lookup) are **precomputed** from the script: for traffic item
//!   `i`, the members of its group after applying every group event with
//!   `at <= item.at` (in list order), minus the source. This requires no
//!   shared mutable truth map at run time.
//! * Data ids are `item index + 1` — a deterministic scheme that does not
//!   depend on timer firing order (the serial protocol numbers packets in
//!   firing order; the two schemes label the same packets differently but
//!   produce identical traffic, transmissions and delivery ratios).
//!
//! This is both the parallel engine's workhorse benchmark protocol (the
//! `perf` scenario's `engine-threads` arm) and a worked example of porting
//! a `Protocol` to [`ParProtocol`].

use crate::common::{TAG_GROUP_BASE, TAG_TRAFFIC_BASE};
use hvdb_core::{GroupEvent, GroupId, TrafficItem};
use hvdb_sim::{NodeId, ParCtx, ParProtocol, SimTime, World};
use rustc_hash::{FxHashMap, FxHashSet};

/// Flooded data frame (parallel engine).
#[derive(Debug, Clone)]
pub struct ParFloodMsg {
    /// Packet id (network-wide dedup).
    pub data_id: u64,
    /// Destination group.
    pub group: GroupId,
    /// Payload bytes.
    pub size: usize,
    /// Transmissions the packet took before this broadcast.
    pub hops: u32,
}

/// Per-node flooding state, owned by the node's shard.
#[derive(Debug, Default)]
pub struct ParFloodNode {
    /// Groups this node currently belongs to.
    pub member_of: FxHashSet<GroupId>,
    /// Data ids already counted as delivered here.
    pub delivered: FxHashSet<u64>,
    /// Data ids already rebroadcast from here.
    pub forwarded: FxHashSet<u64>,
}

/// The flooding protocol for [`hvdb_sim::ParSimulator`]: a read-only
/// scenario script shared by every shard.
pub struct ParFlood {
    traffic: Vec<TrafficItem>,
    group_events: Vec<GroupEvent>,
    /// Expected receiver count per traffic item, precomputed from the
    /// script (see module docs).
    expected: Vec<u64>,
    /// Initial membership, group -> members.
    initial: FxHashMap<GroupId, FxHashSet<NodeId>>,
}

impl ParFlood {
    /// Builds the protocol for a scripted scenario. Group events whose
    /// `at` is at or before a traffic item's `at` count toward that
    /// item's expected receivers (ties resolve in favour of the event;
    /// scenario generators keep the two streams on distinct instants).
    pub fn new(
        initial_groups: &[(NodeId, GroupId)],
        traffic: Vec<TrafficItem>,
        group_events: Vec<GroupEvent>,
    ) -> Self {
        let mut initial: FxHashMap<GroupId, FxHashSet<NodeId>> = FxHashMap::default();
        for (node, group) in initial_groups {
            initial.entry(*group).or_default().insert(*node);
        }
        let expected = traffic
            .iter()
            .map(|item| {
                let mut members = initial.get(&item.group).cloned().unwrap_or_default();
                for ev in &group_events {
                    if ev.group == item.group && ev.at <= item.at {
                        if ev.join {
                            members.insert(ev.node);
                        } else {
                            members.remove(&ev.node);
                        }
                    }
                }
                members.iter().filter(|n| **n != item.src).count() as u64
            })
            .collect();
        ParFlood {
            traffic,
            group_events,
            expected,
            initial,
        }
    }

    fn flood(
        &self,
        id: NodeId,
        node: &mut ParFloodNode,
        ctx: &mut ParCtx<'_, ParFloodMsg>,
        msg: ParFloodMsg,
    ) {
        if !node.forwarded.insert(msg.data_id) {
            return;
        }
        let bytes = 20 + msg.size;
        ctx.broadcast(id, "flood-data", bytes, msg);
    }
}

impl ParProtocol for ParFlood {
    type Msg = ParFloodMsg;
    type Node = ParFloodNode;

    fn make_node(&self, id: NodeId, _world: &World) -> ParFloodNode {
        ParFloodNode {
            member_of: self
                .initial
                .iter()
                .filter(|(_, m)| m.contains(&id))
                .map(|(g, _)| *g)
                .collect(),
            ..Default::default()
        }
    }

    fn on_start(&self, id: NodeId, _node: &mut ParFloodNode, ctx: &mut ParCtx<'_, ParFloodMsg>) {
        for (i, t) in self.traffic.iter().enumerate() {
            if t.src == id {
                ctx.set_timer(id, t.at.since(SimTime::ZERO), TAG_TRAFFIC_BASE + i as u64);
            }
        }
        for (i, g) in self.group_events.iter().enumerate() {
            if g.node == id {
                ctx.set_timer(id, g.at.since(SimTime::ZERO), TAG_GROUP_BASE + i as u64);
            }
        }
    }

    fn on_message(
        &self,
        id: NodeId,
        node: &mut ParFloodNode,
        _from: NodeId,
        msg: ParFloodMsg,
        ctx: &mut ParCtx<'_, ParFloodMsg>,
    ) {
        let hops = msg.hops + 1;
        if node.member_of.contains(&msg.group) && node.delivered.insert(msg.data_id) {
            ctx.record_delivery_hops(msg.data_id, id, hops);
        }
        self.flood(id, node, ctx, ParFloodMsg { hops, ..msg });
    }

    fn on_timer(
        &self,
        id: NodeId,
        node: &mut ParFloodNode,
        tag: u64,
        ctx: &mut ParCtx<'_, ParFloodMsg>,
    ) {
        if tag >= TAG_GROUP_BASE {
            let ev = self.group_events[(tag - TAG_GROUP_BASE) as usize];
            debug_assert_eq!(ev.node, id, "group-event timer fired at the wrong node");
            if ev.join {
                node.member_of.insert(ev.group);
            } else {
                node.member_of.remove(&ev.group);
            }
        } else if tag >= TAG_TRAFFIC_BASE {
            let idx = (tag - TAG_TRAFFIC_BASE) as usize;
            let item = self.traffic[idx];
            let data_id = idx as u64 + 1;
            ctx.record_origin_flow(data_id, self.expected[idx], item.flow, item.seq);
            self.flood(
                id,
                node,
                ctx,
                ParFloodMsg {
                    data_id,
                    group: item.group,
                    size: item.size,
                    hops: 0,
                },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FloodingProtocol;
    use hvdb_geo::{Aabb, Point, Vec2};
    use hvdb_sim::{ParSimulator, RadioConfig, SimConfig, SimDuration, Simulator, Stationary};

    fn grid_cfg(n_side: u32, seed: u64) -> SimConfig {
        let spacing = 150.0;
        let side = n_side as f64 * spacing;
        SimConfig {
            area: Aabb::from_size(side, side),
            num_nodes: (n_side * n_side) as usize,
            radio: RadioConfig {
                range: 250.0,
                ..Default::default()
            },
            mobility_tick: SimDuration::ZERO,
            enhanced_fraction: 1.0,
            seed,
            per_receiver_delivery: false,
            compact_delivery: false,
        }
    }

    fn place_grid(set: &mut dyn FnMut(NodeId, Point), n_side: u32) {
        let spacing = 150.0;
        for r in 0..n_side {
            for c in 0..n_side {
                let id = NodeId(r * n_side + c);
                set(
                    id,
                    Point::new(c as f64 * spacing + 10.0, r as f64 * spacing + 10.0),
                );
            }
        }
    }

    fn scripted() -> (Vec<(NodeId, GroupId)>, Vec<TrafficItem>, Vec<GroupEvent>) {
        let g = GroupId(1);
        let members = vec![(NodeId(0), g), (NodeId(24), g), (NodeId(12), g)];
        let traffic = vec![
            TrafficItem {
                at: SimTime::from_secs(1),
                src: NodeId(6),
                group: g,
                size: 256,
                ..Default::default()
            },
            TrafficItem {
                at: SimTime::from_secs(3),
                src: NodeId(18),
                group: g,
                size: 128,
                ..Default::default()
            },
        ];
        let group_events = vec![GroupEvent {
            at: SimTime::from_secs(2),
            node: NodeId(7),
            group: g,
            join: true,
        }];
        (members, traffic, group_events)
    }

    #[test]
    fn matches_serial_flooding() {
        let (members, traffic, group_events) = scripted();

        let mut serial = Simulator::new(grid_cfg(5, 1), Box::new(Stationary));
        place_grid(
            &mut |id, p| serial.world_mut().set_motion(id, p, Vec2::ZERO),
            5,
        );
        serial.world_mut().rebuild_index();
        let mut sp = FloodingProtocol::new(&members, traffic.clone(), group_events.clone());
        serial.run(&mut sp, SimTime::from_secs(10));

        let mut par: ParSimulator<ParFloodNode, ParFloodMsg> =
            ParSimulator::new(grid_cfg(5, 1), Box::new(Stationary), 8, 4);
        place_grid(
            &mut |id, p| par.world_mut().set_motion(id, p, Vec2::ZERO),
            5,
        );
        par.world_mut().rebuild_index();
        let pp = ParFlood::new(&members, traffic, group_events);
        par.run(&pp, SimTime::from_secs(10));

        assert_eq!(serial.stats().delivery_ratio(), 1.0);
        assert_eq!(par.stats().delivery_ratio(), 1.0);
        assert_eq!(
            serial.stats().msgs("flood-data"),
            par.stats().msgs("flood-data"),
            "serial and parallel flooding transmitted different frame counts"
        );
        assert_eq!(
            serial.stats().events_processed,
            par.stats().events_processed
        );
    }

    #[test]
    fn thread_count_is_invisible() {
        let (members, traffic, group_events) = scripted();
        let run = |threads: usize| {
            let mut sim: ParSimulator<ParFloodNode, ParFloodMsg> =
                ParSimulator::new(grid_cfg(5, 9), Box::new(Stationary), 8, threads);
            place_grid(
                &mut |id, p| sim.world_mut().set_motion(id, p, Vec2::ZERO),
                5,
            );
            sim.world_mut().rebuild_index();
            let p = ParFlood::new(&members, traffic.clone(), group_events.clone());
            sim.run(&p, SimTime::from_secs(10));
            format!("{:?}", sim.stats())
        };
        assert_eq!(run(1), run(4), "threads=4 diverged from threads=1");
    }

    #[test]
    fn expected_counts_follow_group_events() {
        let g = GroupId(3);
        let members = vec![(NodeId(0), g), (NodeId(1), g)];
        let traffic = vec![
            TrafficItem {
                at: SimTime::from_secs(1),
                src: NodeId(0),
                group: g,
                size: 10,
                ..Default::default()
            },
            TrafficItem {
                at: SimTime::from_secs(5),
                src: NodeId(0),
                group: g,
                size: 10,
                ..Default::default()
            },
        ];
        let group_events = vec![GroupEvent {
            at: SimTime::from_secs(3),
            node: NodeId(2),
            group: g,
            join: true,
        }];
        let p = ParFlood::new(&members, traffic, group_events);
        // Before the join: node 1 only. After: nodes 1 and 2.
        assert_eq!(p.expected, vec![1, 2]);
    }
}
