//! Core-based shared-tree multicast — the "tree-based architecture" whose
//! bottleneck the paper's load-balancing claim targets (§5: "no problem of
//! bottlenecks exists, which is likely to occur in tree-based
//! architectures").
//!
//! A rendezvous *core* (the node nearest the area centre, a deterministic
//! choice every node can make from the scenario geometry — standing in for
//! MAODV's group-leader election) roots one shared tree per group:
//!
//! * members periodically geo-route `Join` refreshes toward the core;
//!   every relay on the path records soft forwarding state
//!   (group → downstream children), growing the reverse tree;
//! * sources geo-route data to the core; the core and every tree node
//!   forward down their recorded branches; members deliver.
//!
//! All traffic funnels through the core and its vicinity — exactly the
//! hot-spot structure experiment C3 quantifies against HVDB.

use crate::common::{ScenarioState, TAG_GROUP_BASE, TAG_TRAFFIC_BASE};
use hvdb_core::{GroupEvent, GroupId, TrafficItem};
use hvdb_geo::Point;
use hvdb_sim::georoute;
use hvdb_sim::{Ctx, NodeId, Protocol, SimDuration, SimTime};
use rustc_hash::{FxHashMap, FxHashSet};

const TAG_JOIN_REFRESH: u64 = 1;

/// Shared-tree protocol messages.
#[derive(Debug, Clone)]
pub enum TreeMsg {
    /// A member's join refresh travelling toward the core.
    Join {
        /// The joining member.
        member: NodeId,
        /// The group being joined.
        group: GroupId,
        /// Relays visited (greedy recovery memory).
        visited: Vec<NodeId>,
        /// Remaining hops.
        ttl: u32,
    },
    /// Data travelling up to the core (geo phase).
    DataUp {
        /// Packet id.
        data_id: u64,
        /// Destination group.
        group: GroupId,
        /// Payload bytes.
        size: usize,
        /// Relays visited.
        visited: Vec<NodeId>,
        /// Remaining hops.
        ttl: u32,
        /// Transmissions taken before the current send (hop-count
        /// accounting; rides the header allowance).
        hops: u32,
    },
    /// Data travelling down the shared tree.
    DataDown {
        /// Packet id.
        data_id: u64,
        /// Destination group.
        group: GroupId,
        /// Payload bytes.
        size: usize,
        /// Transmissions taken before the current send.
        hops: u32,
    },
}

impl TreeMsg {
    fn class(&self) -> &'static str {
        match self {
            TreeMsg::Join { .. } => "tree-join",
            TreeMsg::DataUp { .. } => "tree-data-up",
            TreeMsg::DataDown { .. } => "tree-data-down",
        }
    }

    fn wire_size(&self) -> usize {
        match self {
            TreeMsg::Join { .. } => 28,
            TreeMsg::DataUp { size, .. } | TreeMsg::DataDown { size, .. } => 20 + size,
        }
    }
}

/// Per-node soft forwarding state for one group.
#[derive(Debug, Default, Clone)]
struct Branches {
    /// downstream child -> last refresh time.
    children: FxHashMap<NodeId, SimTime>,
}

/// The shared-tree protocol.
pub struct SharedTreeProtocol {
    scenario: ScenarioState,
    /// Per-node, per-group forwarding state.
    branches: Vec<FxHashMap<GroupId, Branches>>,
    /// Per-node dedup of forwarded data (down phase).
    forwarded: Vec<FxHashSet<u64>>,
    /// The core node (resolved at start).
    core: Option<NodeId>,
    core_pos: Point,
    join_interval: SimDuration,
    state_ttl: SimDuration,
    geo_ttl: u32,
}

impl SharedTreeProtocol {
    /// Creates the protocol for a scripted scenario.
    pub fn new(
        initial_groups: &[(NodeId, GroupId)],
        traffic: Vec<TrafficItem>,
        group_events: Vec<GroupEvent>,
    ) -> Self {
        SharedTreeProtocol {
            scenario: ScenarioState::new(initial_groups, traffic, group_events),
            branches: Vec::new(),
            forwarded: Vec::new(),
            core: None,
            core_pos: Point::ORIGIN,
            join_interval: SimDuration::from_secs(5),
            state_ttl: SimDuration::from_secs(15),
            geo_ttl: 64,
        }
    }

    /// The elected core node.
    pub fn core(&self) -> Option<NodeId> {
        self.core
    }

    fn am_core(&self, node: NodeId) -> bool {
        self.core == Some(node)
    }

    /// Records downstream state and returns whether it was new.
    fn record_child(&mut self, node: NodeId, group: GroupId, child: NodeId, now: SimTime) {
        self.branches[node.idx()]
            .entry(group)
            .or_default()
            .children
            .insert(child, now);
    }

    fn live_children(&self, node: NodeId, group: GroupId, now: SimTime) -> Vec<NodeId> {
        let Some(b) = self.branches[node.idx()].get(&group) else {
            return Vec::new();
        };
        let mut out: Vec<NodeId> = b
            .children
            .iter()
            .filter(|(_, t)| now.since(**t) <= self.state_ttl)
            .map(|(c, _)| *c)
            .collect();
        out.sort_unstable();
        out
    }

    fn forward_toward_core(&mut self, node: NodeId, ctx: &mut Ctx<'_, TreeMsg>, msg: TreeMsg) {
        let visited = match &msg {
            TreeMsg::Join { visited, .. } | TreeMsg::DataUp { visited, .. } => visited.clone(),
            TreeMsg::DataDown { .. } => Vec::new(),
        };
        if let Some(nh) = georoute::next_hop(ctx, node, self.core_pos, &visited) {
            let class = msg.class();
            let bytes = msg.wire_size();
            ctx.send_reliable(node, nh, class, bytes, msg);
        }
    }

    /// Delivers at this tree node (`hops` transmissions behind us) and
    /// forwards down every live branch.
    fn push_down(
        &mut self,
        node: NodeId,
        ctx: &mut Ctx<'_, TreeMsg>,
        data_id: u64,
        group: GroupId,
        size: usize,
        hops: u32,
    ) {
        if !self.forwarded[node.idx()].insert(data_id) {
            return;
        }
        self.scenario.deliver_hops(node, ctx, data_id, group, hops);
        for child in self.live_children(node, group, ctx.now()) {
            let msg = TreeMsg::DataDown {
                data_id,
                group,
                size,
                hops,
            };
            let bytes = msg.wire_size();
            ctx.send_reliable(node, child, "tree-data-down", bytes, msg);
        }
    }
}

impl Protocol for SharedTreeProtocol {
    type Msg = TreeMsg;

    fn on_start(&mut self, node: NodeId, ctx: &mut Ctx<'_, TreeMsg>) {
        self.scenario.on_start(node, ctx);
        if self.branches.len() < ctx.node_count() {
            self.branches = vec![FxHashMap::default(); ctx.node_count()];
            self.forwarded = vec![FxHashSet::default(); ctx.node_count()];
            // Deterministic core: the node nearest the area centre at t=0.
            let center = ctx.area().center();
            let mut best = (NodeId(0), f64::INFINITY);
            for id in 0..ctx.node_count() as u32 {
                let d = ctx.position(NodeId(id)).distance_sq(center);
                if d < best.1 {
                    best = (NodeId(id), d);
                }
            }
            self.core = Some(best.0);
            self.core_pos = ctx.position(best.0);
        }
        // Members refresh joins periodically (phase-jittered).
        let j = SimDuration(ctx.rng().range_u64(0, self.join_interval.0.max(1)));
        ctx.set_timer(node, j, TAG_JOIN_REFRESH);
    }

    fn on_message(&mut self, node: NodeId, from: NodeId, msg: TreeMsg, ctx: &mut Ctx<'_, TreeMsg>) {
        match msg {
            TreeMsg::Join {
                member,
                group,
                mut visited,
                ttl,
            } => {
                // Record the reverse branch toward the member.
                self.record_child(node, group, from, ctx.now());
                if self.am_core(node) || ttl == 0 {
                    return;
                }
                georoute::push_visited(&mut visited, node);
                self.forward_toward_core(
                    node,
                    ctx,
                    TreeMsg::Join {
                        member,
                        group,
                        visited,
                        ttl: ttl - 1,
                    },
                );
            }
            TreeMsg::DataUp {
                data_id,
                group,
                size,
                mut visited,
                ttl,
                hops,
            } => {
                let hops = hops + 1; // the send that reached us
                self.scenario.deliver_hops(node, ctx, data_id, group, hops);
                if self.am_core(node) {
                    self.push_down(node, ctx, data_id, group, size, hops);
                } else if ttl > 0 {
                    georoute::push_visited(&mut visited, node);
                    self.forward_toward_core(
                        node,
                        ctx,
                        TreeMsg::DataUp {
                            data_id,
                            group,
                            size,
                            visited,
                            ttl: ttl - 1,
                            hops,
                        },
                    );
                }
            }
            TreeMsg::DataDown {
                data_id,
                group,
                size,
                hops,
            } => {
                self.push_down(node, ctx, data_id, group, size, hops + 1);
            }
        }
    }

    fn on_timer(&mut self, node: NodeId, tag: u64, ctx: &mut Ctx<'_, TreeMsg>) {
        if tag >= TAG_GROUP_BASE {
            self.scenario
                .apply_group_event((tag - TAG_GROUP_BASE) as usize);
        } else if tag >= TAG_TRAFFIC_BASE {
            let (data_id, group, size) =
                self.scenario
                    .originate(node, ctx, (tag - TAG_TRAFFIC_BASE) as usize);
            if self.am_core(node) {
                self.push_down(node, ctx, data_id, group, size, 0);
            } else {
                self.forward_toward_core(
                    node,
                    ctx,
                    TreeMsg::DataUp {
                        data_id,
                        group,
                        size,
                        visited: vec![node],
                        ttl: self.geo_ttl,
                        hops: 0,
                    },
                );
            }
        } else if tag == TAG_JOIN_REFRESH {
            ctx.set_timer(node, self.join_interval, TAG_JOIN_REFRESH);
            let groups: Vec<GroupId> = self.scenario.member_of[node.idx()]
                .iter()
                .copied()
                .collect();
            let mut groups = groups;
            groups.sort_unstable();
            for group in groups {
                if self.am_core(node) {
                    continue;
                }
                self.forward_toward_core(
                    node,
                    ctx,
                    TreeMsg::Join {
                        member: node,
                        group,
                        visited: vec![node],
                        ttl: self.geo_ttl,
                    },
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hvdb_geo::{Aabb, Vec2};
    use hvdb_sim::{RadioConfig, SimConfig, Simulator, Stationary};

    fn grid_sim(n_side: u32, seed: u64) -> Simulator<TreeMsg> {
        let spacing = 150.0;
        let side = n_side as f64 * spacing;
        let cfg = SimConfig {
            area: Aabb::from_size(side, side),
            num_nodes: (n_side * n_side) as usize,
            radio: RadioConfig {
                range: 250.0,
                ..Default::default()
            },
            mobility_tick: SimDuration::ZERO,
            enhanced_fraction: 1.0,
            seed,
            per_receiver_delivery: false,
            compact_delivery: false,
        };
        let mut sim = Simulator::new(cfg, Box::new(Stationary));
        for r in 0..n_side {
            for c in 0..n_side {
                let id = NodeId(r * n_side + c);
                let p = Point::new(c as f64 * spacing + 10.0, r as f64 * spacing + 10.0);
                sim.world_mut().set_motion(id, p, Vec2::ZERO);
            }
        }
        sim.world_mut().rebuild_index();
        sim
    }

    #[test]
    fn tree_delivers_after_joins_settle() {
        let mut sim = grid_sim(5, 1);
        let g = GroupId(1);
        let members = [(NodeId(0), g), (NodeId(24), g), (NodeId(4), g)];
        let traffic = vec![TrafficItem {
            at: SimTime::from_secs(20),
            src: NodeId(20),
            group: g,
            size: 256,
            ..Default::default()
        }];
        let mut p = SharedTreeProtocol::new(&members, traffic, vec![]);
        sim.run(&mut p, SimTime::from_secs(40));
        assert!(
            sim.stats().delivery_ratio() >= 0.99,
            "ratio {}",
            sim.stats().delivery_ratio()
        );
    }

    #[test]
    fn core_is_center_node() {
        let mut sim = grid_sim(5, 2);
        let mut p = SharedTreeProtocol::new(&[], vec![], vec![]);
        sim.run(&mut p, SimTime::from_secs(1));
        // 5x5 grid: node 12 sits nearest the centre.
        assert_eq!(p.core(), Some(NodeId(12)));
    }

    #[test]
    fn load_concentrates_near_core() {
        let mut sim = grid_sim(5, 3);
        let g = GroupId(1);
        // Corner members, corner source: everything crosses the middle.
        let members = [
            (NodeId(0), g),
            (NodeId(4), g),
            (NodeId(20), g),
            (NodeId(24), g),
        ];
        let traffic: Vec<TrafficItem> = (0..10)
            .map(|i| TrafficItem {
                at: SimTime::from_secs(20 + i),
                src: NodeId(2),
                group: g,
                size: 400,
                ..Default::default()
            })
            .collect();
        let mut p = SharedTreeProtocol::new(&members, traffic, vec![]);
        sim.run(&mut p, SimTime::from_secs(45));
        let core = p.core().unwrap();
        let bytes = &sim.stats().node_tx_bytes;
        let core_bytes = bytes[core.idx()];
        let mean: f64 = bytes.iter().sum::<u64>() as f64 / bytes.len() as f64;
        assert!(
            core_bytes as f64 > 1.5 * mean,
            "core {core_bytes} vs mean {mean}"
        );
        assert!(sim.stats().delivery_ratio() >= 0.9);
    }

    #[test]
    fn stale_branches_expire() {
        let mut sim = grid_sim(4, 4);
        let g = GroupId(1);
        // Member leaves at t = 30; packet at t = 60 expects nobody.
        let members = [(NodeId(15), g)];
        let events = vec![GroupEvent {
            at: SimTime::from_secs(30),
            node: NodeId(15),
            group: g,
            join: false,
        }];
        let traffic = vec![TrafficItem {
            at: SimTime::from_secs(60),
            src: NodeId(0),
            group: g,
            size: 100,
            ..Default::default()
        }];
        let mut p = SharedTreeProtocol::new(&members, traffic, events);
        sim.run(&mut p, SimTime::from_secs(80));
        // Expected receivers = 0, so ratio stays 1.0 and no delivery happens.
        assert_eq!(sim.stats().delivery_ratio(), 1.0);
        assert!(sim.stats().latencies().is_empty());
    }
}
