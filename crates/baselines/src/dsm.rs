//! DSM-style multicast (Basagni et al. \[1\]) — global-snapshot source trees.
//!
//! In the Dynamic Source Multicast protocol "the location and transmission
//! radius information has to be periodically broadcast from each node to
//! all the other nodes in the network" (paper §2.2) — that network-wide
//! per-node flood is DSM's scalability ceiling and is modelled here
//! exactly. Sources then compute delivery locally from their snapshot and
//! source-route copies to the member locations (we geo-unicast per member;
//! DSM's optimal tree encoding shares path prefixes, so our data cost is an
//! upper bound — the *membership/location overhead*, which is what the
//! comparative experiments measure, is faithful).

use crate::common::{ScenarioState, TAG_GROUP_BASE, TAG_TRAFFIC_BASE};
use hvdb_core::{GroupEvent, GroupId, TrafficItem};
use hvdb_geo::Point;
use hvdb_sim::georoute;
use hvdb_sim::{Ctx, NodeId, Protocol, SimDuration};
use rustc_hash::{FxHashMap, FxHashSet};

const TAG_LOCATION: u64 = 1;

/// DSM messages.
#[derive(Debug, Clone)]
pub enum DsmMsg {
    /// A node's periodic network-wide location/membership flood.
    Location {
        /// The advertising node.
        node: NodeId,
        /// Its position at advertisement time.
        pos: Point,
        /// Its group memberships.
        groups: Vec<GroupId>,
        /// Advertisement sequence (flood dedup and freshness).
        seq: u64,
    },
    /// A data copy geo-routed to one member's last known location.
    Data {
        /// Packet id.
        data_id: u64,
        /// Destination group.
        group: GroupId,
        /// Payload bytes.
        size: usize,
        /// The member this copy is for.
        dest: NodeId,
        /// The member's snapshot position.
        dest_pos: Point,
        /// Relays visited.
        visited: Vec<NodeId>,
        /// Remaining hops.
        ttl: u32,
    },
}

impl DsmMsg {
    fn wire_size(&self) -> usize {
        match self {
            DsmMsg::Location { groups, .. } => 32 + groups.len() * 4,
            DsmMsg::Data { size, .. } => 36 + size,
        }
    }
}

/// One node's replicated view of another: (seq, position, groups).
type NodeView = (u64, Point, Vec<GroupId>);

/// The DSM-style protocol.
pub struct DsmProtocol {
    scenario: ScenarioState,
    /// Per-node snapshot: node -> latest view.
    snapshot: Vec<FxHashMap<NodeId, NodeView>>,
    /// Per-node flood dedup: (origin, seq).
    seen: Vec<FxHashSet<(NodeId, u64)>>,
    location_interval: SimDuration,
    seq: Vec<u64>,
    geo_ttl: u32,
}

impl DsmProtocol {
    /// Creates the protocol for a scripted scenario.
    pub fn new(
        initial_groups: &[(NodeId, GroupId)],
        traffic: Vec<TrafficItem>,
        group_events: Vec<GroupEvent>,
    ) -> Self {
        DsmProtocol {
            scenario: ScenarioState::new(initial_groups, traffic, group_events),
            snapshot: Vec::new(),
            seen: Vec::new(),
            location_interval: SimDuration::from_secs(10),
            seq: Vec::new(),
            geo_ttl: 64,
        }
    }

    fn flood(&mut self, node: NodeId, ctx: &mut Ctx<'_, DsmMsg>, msg: DsmMsg) {
        let (origin, seq) = match &msg {
            DsmMsg::Location { node, seq, .. } => (*node, *seq),
            _ => unreachable!("only location floods"),
        };
        if !self.seen[node.idx()].insert((origin, seq)) {
            return;
        }
        let bytes = msg.wire_size();
        ctx.broadcast(node, "dsm-location", bytes, msg);
    }
}

impl Protocol for DsmProtocol {
    type Msg = DsmMsg;

    fn on_start(&mut self, node: NodeId, ctx: &mut Ctx<'_, DsmMsg>) {
        self.scenario.on_start(node, ctx);
        if self.snapshot.len() < ctx.node_count() {
            self.snapshot = vec![FxHashMap::default(); ctx.node_count()];
            self.seen = vec![FxHashSet::default(); ctx.node_count()];
            self.seq = vec![0; ctx.node_count()];
        }
        let j = SimDuration(ctx.rng().range_u64(0, self.location_interval.0.max(1)));
        ctx.set_timer(node, j, TAG_LOCATION);
    }

    fn on_message(&mut self, node: NodeId, _from: NodeId, msg: DsmMsg, ctx: &mut Ctx<'_, DsmMsg>) {
        match msg {
            DsmMsg::Location {
                node: origin,
                pos,
                ref groups,
                seq,
            } => {
                let snap = &mut self.snapshot[node.idx()];
                let fresh = snap
                    .get(&origin)
                    .map(|(old_seq, _, _)| seq > *old_seq)
                    .unwrap_or(true);
                if fresh {
                    snap.insert(origin, (seq, pos, groups.clone()));
                }
                self.flood(node, ctx, msg);
            }
            DsmMsg::Data {
                data_id,
                group,
                size,
                dest,
                dest_pos,
                mut visited,
                ttl,
            } => {
                if dest == node {
                    self.scenario.deliver(node, ctx, data_id, group);
                    return;
                }
                if ttl == 0 {
                    return;
                }
                georoute::push_visited(&mut visited, node);
                // Direct hand-off if the member is a neighbour.
                let hop = if ctx.with_neighbors(node, |_, ns| ns.contains(&dest)) {
                    Some(dest)
                } else {
                    georoute::next_hop(ctx, node, dest_pos, &visited)
                };
                if let Some(nh) = hop {
                    let msg = DsmMsg::Data {
                        data_id,
                        group,
                        size,
                        dest,
                        dest_pos,
                        visited,
                        ttl: ttl - 1,
                    };
                    let bytes = msg.wire_size();
                    ctx.send_reliable(node, nh, "dsm-data", bytes, msg);
                }
            }
        }
    }

    fn on_timer(&mut self, node: NodeId, tag: u64, ctx: &mut Ctx<'_, DsmMsg>) {
        if tag >= TAG_GROUP_BASE {
            self.scenario
                .apply_group_event((tag - TAG_GROUP_BASE) as usize);
        } else if tag >= TAG_TRAFFIC_BASE {
            let (data_id, group, size) =
                self.scenario
                    .originate(node, ctx, (tag - TAG_TRAFFIC_BASE) as usize);
            // Compute members from the local global snapshot (DSM's local
            // tree computation) and send one geo copy per member.
            let targets: Vec<(NodeId, Point)> = {
                let snap = &self.snapshot[node.idx()];
                let mut t: Vec<(NodeId, Point)> = snap
                    .iter()
                    .filter(|(id, (_, _, groups))| **id != node && groups.contains(&group))
                    .map(|(id, (_, pos, _))| (*id, *pos))
                    .collect();
                t.sort_by_key(|(id, _)| *id);
                t
            };
            for (dest, dest_pos) in targets {
                let msg = DsmMsg::Data {
                    data_id,
                    group,
                    size,
                    dest,
                    dest_pos,
                    visited: vec![node],
                    ttl: self.geo_ttl,
                };
                if dest == node {
                    continue;
                }
                // First hop from the source.
                let hop = if ctx.with_neighbors(node, |_, ns| ns.contains(&dest)) {
                    Some(dest)
                } else {
                    georoute::next_hop(ctx, node, dest_pos, &[node])
                };
                if let Some(nh) = hop {
                    let bytes = msg.wire_size();
                    ctx.send_reliable(node, nh, "dsm-data", bytes, msg);
                }
            }
        } else if tag == TAG_LOCATION {
            ctx.set_timer(node, self.location_interval, TAG_LOCATION);
            self.seq[node.idx()] += 1;
            let mut groups: Vec<GroupId> = self.scenario.member_of[node.idx()]
                .iter()
                .copied()
                .collect();
            groups.sort_unstable();
            let msg = DsmMsg::Location {
                node,
                pos: ctx.position(node),
                groups,
                seq: self.seq[node.idx()],
            };
            self.flood(node, ctx, msg);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hvdb_geo::{Aabb, Vec2};
    use hvdb_sim::{RadioConfig, SimConfig, SimTime, Simulator, Stationary};

    fn grid_sim(n_side: u32, seed: u64) -> Simulator<DsmMsg> {
        let spacing = 150.0;
        let side = n_side as f64 * spacing;
        let cfg = SimConfig {
            area: Aabb::from_size(side, side),
            num_nodes: (n_side * n_side) as usize,
            radio: RadioConfig {
                range: 250.0,
                ..Default::default()
            },
            mobility_tick: SimDuration::ZERO,
            enhanced_fraction: 1.0,
            seed,
            per_receiver_delivery: false,
            compact_delivery: false,
        };
        let mut sim = Simulator::new(cfg, Box::new(Stationary));
        for r in 0..n_side {
            for c in 0..n_side {
                let id = NodeId(r * n_side + c);
                let p = Point::new(c as f64 * spacing + 10.0, r as f64 * spacing + 10.0);
                sim.world_mut().set_motion(id, p, Vec2::ZERO);
            }
        }
        sim.world_mut().rebuild_index();
        sim
    }

    #[test]
    fn location_floods_build_global_snapshot() {
        let mut sim = grid_sim(4, 1);
        let g = GroupId(1);
        let mut p = DsmProtocol::new(&[(NodeId(5), g)], vec![], vec![]);
        sim.run(&mut p, SimTime::from_secs(25));
        // Every node's snapshot should cover every other node.
        for n in 0..16usize {
            assert!(
                p.snapshot[n].len() >= 15,
                "node {n} snapshot has only {} entries",
                p.snapshot[n].len()
            );
        }
        // Flood cost: each advert is retransmitted by every node once:
        // N adverts * N transmissions per period >= N^2.
        assert!(sim.stats().msgs("dsm-location") >= 16 * 16);
    }

    #[test]
    fn data_reaches_members_from_snapshot() {
        let mut sim = grid_sim(4, 2);
        let g = GroupId(1);
        let members = [(NodeId(15), g), (NodeId(3), g)];
        let traffic = vec![TrafficItem {
            at: SimTime::from_secs(25), // after snapshots converge
            src: NodeId(0),
            group: g,
            size: 300,
            ..Default::default()
        }];
        let mut p = DsmProtocol::new(&members, traffic, vec![]);
        sim.run(&mut p, SimTime::from_secs(40));
        assert!(
            sim.stats().delivery_ratio() >= 0.99,
            "ratio {}",
            sim.stats().delivery_ratio()
        );
    }

    #[test]
    fn membership_changes_propagate_with_next_flood() {
        let mut sim = grid_sim(3, 3);
        let g = GroupId(2);
        let events = vec![GroupEvent {
            at: SimTime::from_secs(15),
            node: NodeId(8),
            group: g,
            join: true,
        }];
        let traffic = vec![TrafficItem {
            at: SimTime::from_secs(40), // after the join's next advert
            src: NodeId(0),
            group: g,
            size: 100,
            ..Default::default()
        }];
        let mut p = DsmProtocol::new(&[], traffic, events);
        sim.run(&mut p, SimTime::from_secs(55));
        assert_eq!(sim.stats().delivery_ratio(), 1.0);
    }
}
