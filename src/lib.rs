//! # hvdb — logical Hypercube-based Virtual Dynamic Backbone
//!
//! A full reproduction of **"A Novel QoS Multicast Model in Mobile Ad Hoc
//! Networks"** (Guojun Wang, Jiannong Cao, Lifan Zhang, Keith C. C. Chan,
//! Jie Wu — IPDPS 2005) as a Rust workspace:
//!
//! | crate | contents |
//! |---|---|
//! | [`geo`] | virtual-circle grid, logical identifiers (CHID/HNID/HID/MNID), spatial index |
//! | [`hypercube`] | incomplete hypercubes, routing, disjoint paths, multicast trees |
//! | [`sim`] | deterministic discrete-event MANET simulator |
//! | [`traffic`] | deterministic traffic plane: seeded load generators, per-flow latency/jitter/hop histograms |
//! | [`cluster`] | mobility-prediction cluster-head election |
//! | [`core`] | the HVDB model and protocol (route maintenance, membership summaries, multicast) |
//! | [`baselines`] | flooding, shared-tree, DSM-style and SPBM-style comparison protocols |
//!
//! This facade crate re-exports everything under one roof and hosts the
//! runnable examples (`examples/`) and cross-crate integration tests
//! (`tests/`).
//!
//! ## Quickstart
//!
//! ```no_run
//! use hvdb::core::{GroupId, HvdbConfig, HvdbProtocol, TrafficItem};
//! use hvdb::sim::{NodeId, SimConfig, SimTime, Simulator, RandomWaypoint};
//! use hvdb::geo::Aabb;
//!
//! let area = Aabb::from_size(800.0, 800.0);
//! let cfg = HvdbConfig::fig2(area); // the paper's 8x8-VC example
//! let sim_cfg = SimConfig { area, num_nodes: 200, ..Default::default() };
//! let mut sim = Simulator::new(sim_cfg, Box::new(RandomWaypoint::new(1.0, 5.0, 10.0)));
//! let group = GroupId(1);
//! let members = [(NodeId(10), group), (NodeId(190), group)];
//! let traffic = vec![TrafficItem {
//!     at: SimTime::from_secs(120), src: NodeId(50), group, size: 512,
//!     ..Default::default()
//! }];
//! let mut proto = HvdbProtocol::new(cfg, &members, traffic, vec![]);
//! sim.run(&mut proto, SimTime::from_secs(180));
//! println!("delivery ratio: {:.3}", sim.stats().delivery_ratio());
//! ```

pub use hvdb_baselines as baselines;
pub use hvdb_cluster as cluster;
pub use hvdb_core as core;
pub use hvdb_geo as geo;
pub use hvdb_hypercube as hypercube;
pub use hvdb_sim as sim;
pub use hvdb_traffic as traffic;
